#include "simgpu/KernelStats.hpp"

#include <algorithm>

#include "util/Logging.hpp"

namespace gsuite {

const char *
stallReasonName(StallReason r)
{
    switch (r) {
      case StallReason::Issued: return "InstructionIssued";
      case StallReason::MemoryDependency: return "MemoryDependency";
      case StallReason::ExecutionDependency:
        return "ExecutionDependency";
      case StallReason::InstructionFetch: return "InstructionFetch";
      case StallReason::Synchronization: return "Synchronization";
      case StallReason::MshrFull: return "MshrFull";
      case StallReason::NotSelected: return "NotSelected";
    }
    panic("unknown StallReason");
}

const char *
occBucketName(OccBucket b)
{
    switch (b) {
      case OccBucket::Stall: return "Stall";
      case OccBucket::Idle: return "Idle";
      case OccBucket::W8: return "W8";
      case OccBucket::W20: return "W20";
      case OccBucket::W32: return "W32";
    }
    panic("unknown OccBucket");
}

double
KernelStats::l1HitRate() const
{
    const uint64_t total = l1Hits + l1Misses;
    return total ? static_cast<double>(l1Hits) / total : 0.0;
}

double
KernelStats::l2HitRate() const
{
    const uint64_t total = l2Hits + l2Misses;
    return total ? static_cast<double>(l2Hits) / total : 0.0;
}

double
KernelStats::stallShare(StallReason r) const
{
    uint64_t total = 0;
    for (uint64_t v : stallCycles)
        total += v;
    return total ? static_cast<double>(
                       stallCycles[static_cast<size_t>(r)]) /
                       total
                 : 0.0;
}

double
KernelStats::occShare(OccBucket b) const
{
    uint64_t total = 0;
    for (uint64_t v : occCycles)
        total += v;
    return total ? static_cast<double>(
                       occCycles[static_cast<size_t>(b)]) /
                       total
                 : 0.0;
}

double
KernelStats::instrShare(InstrClass c) const
{
    return warpInstrs ? static_cast<double>(
                            instrByClass[static_cast<size_t>(c)]) /
                            warpInstrs
                      : 0.0;
}

double
KernelStats::computeUtilization() const
{
    return schedulerSlots
               ? static_cast<double>(aluBusyCycles) / schedulerSlots
               : 0.0;
}

double
KernelStats::memoryUtilization() const
{
    return cycles ? std::min(1.0, static_cast<double>(dramBusyCycles) /
                                      cycles)
                  : 0.0;
}

double
KernelStats::divergence() const
{
    return memInstrs ? static_cast<double>(memSectors) / memInstrs : 0.0;
}

double
KernelStats::estimate(const std::string &stat) const
{
    for (const SampleEstimate &e : estimates)
        if (e.name == stat)
            return e.est;
    return toStatSet().get(stat);
}

double
KernelStats::estimateErr(const std::string &stat) const
{
    for (const SampleEstimate &e : estimates)
        if (e.name == stat)
            return e.err;
    return 0.0;
}

double
KernelStats::timeMs(double clock_ghz) const
{
    double effective_cycles =
        static_cast<double>(cycles) * samplingFactor();
    if (sampledCtas > 0) {
        // The stratified extrapolation knows about heavy/light CTA
        // imbalance; prefer it to the homogeneous samplingFactor().
        for (const SampleEstimate &e : estimates)
            if (e.name == "cycles" && e.est > 0.0)
                effective_cycles = e.est;
    }
    return effective_cycles / (clock_ghz * 1e6);
}

double
KernelStats::samplingFactor() const
{
    // The SM-subset sampling itself is time-neutral (the full GPU
    // runs smSampleFactor times the CTAs on as many times the SMs in
    // the same wall time); only the additional maxCtas cap scales
    // simulated time back up.
    if (ctasSimulated <= 0 || ctasExpected <= ctasSimulated)
        return 1.0;
    return static_cast<double>(ctasExpected) / ctasSimulated;
}

void
KernelStats::merge(const KernelStats &other)
{
    // Estimates combine estimated-or-exact totals per counter, so
    // they must read each side's raw counters before the counter
    // merge below mixes them. An unsampled side contributes its exact
    // value with zero error.
    if (!estimates.empty() || !other.estimates.empty()) {
        const StatSet mine = toStatSet();
        const StatSet theirs = other.toStatSet();
        auto side = [](const KernelStats &ks, const StatSet &raw,
                       const std::string &n) {
            for (const SampleEstimate &e : ks.estimates)
                if (e.name == n)
                    return std::pair<double, double>{e.est, e.err};
            return std::pair<double, double>{raw.get(n), 0.0};
        };
        std::vector<std::string> names;
        for (const SampleEstimate &e : estimates)
            names.push_back(e.name);
        for (const SampleEstimate &e : other.estimates)
            if (std::find(names.begin(), names.end(), e.name) ==
                names.end())
                names.push_back(e.name);
        std::vector<SampleEstimate> merged;
        merged.reserve(names.size());
        for (const std::string &n : names) {
            const auto [ea, ra] = side(*this, mine, n);
            const auto [eb, rb] = side(other, theirs, n);
            merged.push_back({n, ea + eb, ra + rb});
        }
        estimates = std::move(merged);
    }
    sampledCtas += other.sampledCtas;
    sampleStrata = std::max(sampleStrata, other.sampleStrata);

    cycles += other.cycles;
    ctasTotal += other.ctasTotal;
    ctasExpected += other.ctasExpected;
    ctasSimulated += other.ctasSimulated;
    warpsSimulated += other.warpsSimulated;
    for (size_t i = 0; i < instrByClass.size(); ++i)
        instrByClass[i] += other.instrByClass[i];
    warpInstrs += other.warpInstrs;
    threadInstrs += other.threadInstrs;
    for (size_t i = 0; i < stallCycles.size(); ++i)
        stallCycles[i] += other.stallCycles[i];
    for (size_t i = 0; i < occCycles.size(); ++i)
        occCycles[i] += other.occCycles[i];
    l1Hits += other.l1Hits;
    l1Misses += other.l1Misses;
    l2Hits += other.l2Hits;
    l2Misses += other.l2Misses;
    memInstrs += other.memInstrs;
    memSectors += other.memSectors;
    dramBytes += other.dramBytes;
    dramBusyCycles += other.dramBusyCycles;
    dramRowHits += other.dramRowHits;
    dramRowMisses += other.dramRowMisses;
    // Queue depth does not accumulate across sequential launches.
    dramQueuePeak = std::max(dramQueuePeak, other.dramQueuePeak);
    aluBusyCycles += other.aluBusyCycles;
    schedulerSlots += other.schedulerSlots;
    classifyEvals += other.classifyEvals;
    fastForwardCycles += other.fastForwardCycles;
    // Launches run one after another, so the aggregate footprint is a
    // high-water mark, not a sum (the per-SM sum within one launch is
    // computed by the simulator's reduction instead).
    traceBytesPeak = std::max(traceBytesPeak, other.traceBytesPeak);
    deviceBytesPeak =
        std::max(deviceBytesPeak, other.deviceBytesPeak);
}

StatSet
KernelStats::toStatSet() const
{
    StatSet s;
    s.set("cycles", static_cast<double>(cycles));
    s.set("ctas_total", static_cast<double>(ctasTotal));
    s.set("ctas_expected", static_cast<double>(ctasExpected));
    s.set("ctas_simulated", static_cast<double>(ctasSimulated));
    s.set("warps", static_cast<double>(warpsSimulated));
    s.set("warp_instrs", static_cast<double>(warpInstrs));
    s.set("thread_instrs", static_cast<double>(threadInstrs));
    for (int c = 0; c < kNumInstrClasses; ++c) {
        s.set(std::string("instr_") +
                  instrClassName(static_cast<InstrClass>(c)),
              static_cast<double>(instrByClass[static_cast<size_t>(c)]));
    }
    for (int r = 0; r < kNumStallReasons; ++r) {
        s.set(std::string("stall_") +
                  stallReasonName(static_cast<StallReason>(r)),
              static_cast<double>(stallCycles[static_cast<size_t>(r)]));
    }
    for (int b = 0; b < kNumOccBuckets; ++b) {
        s.set(std::string("occ_") +
                  occBucketName(static_cast<OccBucket>(b)),
              static_cast<double>(occCycles[static_cast<size_t>(b)]));
    }
    s.set("l1_hits", static_cast<double>(l1Hits));
    s.set("l1_misses", static_cast<double>(l1Misses));
    s.set("l2_hits", static_cast<double>(l2Hits));
    s.set("l2_misses", static_cast<double>(l2Misses));
    s.set("l1_hit_rate", l1HitRate());
    s.set("l2_hit_rate", l2HitRate());
    s.set("mem_instrs", static_cast<double>(memInstrs));
    s.set("mem_sectors", static_cast<double>(memSectors));
    s.set("dram_bytes", static_cast<double>(dramBytes));
    s.set("dram_busy_cycles", static_cast<double>(dramBusyCycles));
    s.set("dram_row_hits", static_cast<double>(dramRowHits));
    s.set("dram_row_misses", static_cast<double>(dramRowMisses));
    s.set("dram_queue_peak", static_cast<double>(dramQueuePeak));
    // Alias of stall_MshrFull under the deterministic *_cycles
    // naming so bench comparisons treat it as blocking-exact.
    s.set("mshr_stall_cycles",
          static_cast<double>(stallCycles[static_cast<size_t>(
              StallReason::MshrFull)]));
    s.set("alu_busy_cycles", static_cast<double>(aluBusyCycles));
    s.set("scheduler_slots", static_cast<double>(schedulerSlots));
    s.set("compute_util", computeUtilization());
    s.set("memory_util", memoryUtilization());
    s.set("divergence", divergence());
    s.set("trace_bytes_peak", static_cast<double>(traceBytesPeak));
    s.set("device_bytes_peak",
          static_cast<double>(deviceBytesPeak));
    s.set("classify_evals", static_cast<double>(classifyEvals));
    s.set("fast_forward_cycles",
          static_cast<double>(fastForwardCycles));
    if (sampledCtas > 0) {
        s.set("sampled_ctas", static_cast<double>(sampledCtas));
        s.set("sample_strata", static_cast<double>(sampleStrata));
        for (const SampleEstimate &e : estimates) {
            s.set("est_" + e.name, e.est);
            s.set("err_" + e.name, e.err);
        }
    }
    return s;
}

} // namespace gsuite
