#include "simgpu/Sm.hpp"

#include <algorithm>

#include "util/Logging.hpp"

namespace gsuite {

namespace {

constexpr uint64_t kNoEvent = ~uint64_t{0};

/** std::push_heap/pop_heap comparator for a min-heap on key. */
struct HeapLater {
    bool
    operator()(const auto &a, const auto &b) const
    {
        return a.key > b.key;
    }
};

} // namespace

Sm::Sm(const GpuConfig &cfg, int sm_id, MemorySystem &mem)
    : cfg(cfg), smId(sm_id), mem(mem),
      warps(static_cast<size_t>(cfg.maxWarpsPerSm)),
      cls(static_cast<size_t>(cfg.maxWarpsPerSm)),
      aluFree(static_cast<size_t>(cfg.numSchedulers), 0),
      greedyWarp(static_cast<size_t>(cfg.numSchedulers), -1),
      rrCursor(static_cast<size_t>(cfg.numSchedulers), 0),
      slotActive(static_cast<size_t>(cfg.maxWarpsPerSm), 0),
      slotReason(static_cast<size_t>(cfg.maxWarpsPerSm), 0),
      slotUnblock(static_cast<size_t>(cfg.maxWarpsPerSm), 0),
      slotExpiry(static_cast<size_t>(cfg.maxWarpsPerSm), 0),
      slotAge(static_cast<size_t>(cfg.maxWarpsPerSm), 0),
      slotIsMem(static_cast<size_t>(cfg.maxWarpsPerSm), 0),
      slotNeedsAlu(static_cast<size_t>(cfg.maxWarpsPerSm), 0),
      slotLanes(static_cast<size_t>(cfg.maxWarpsPerSm), 0),
      readyPos(static_cast<size_t>(cfg.maxWarpsPerSm), -1),
      slotReadyKind(static_cast<size_t>(cfg.maxWarpsPerSm), 0),
      residentBySched(static_cast<size_t>(cfg.numSchedulers), 0)
{
    for (auto &kind : readyKind)
        kind.resize(static_cast<size_t>(cfg.numSchedulers));
}

void
Sm::beginLaunch(const KernelLaunch *new_launch, KernelStats *new_stats,
                size_t chunk_instrs, bool idle_skip,
                std::vector<CtaSampleRecord> *sample_records)
{
    launch = new_launch;
    stats = new_stats;
    chunkBudget = std::max<size_t>(1, chunk_instrs);
    idleSkip = idle_skip;
    sampleRecords = sample_records;
    for (auto &w : warps) {
        w.active = false;
        w.done = false;
        w.waitingBarrier = false;
        w.chunk.clear();
        w.stream = nullptr;
        w.streamDone = false;
        w.regCursor = 0;
        w.pc = 0;
        w.regReady.fill(0);
        w.regFromMem.reset();
        w.fetchReady = 0;
        w.atomicDrain = 0;
        w.cta = -1;
        w.chunkBytes = 0;
    }
    std::fill(aluFree.begin(), aluFree.end(), uint64_t{0});
    std::fill(greedyWarp.begin(), greedyWarp.end(), -1);
    std::fill(rrCursor.begin(), rrCursor.end(), 0);
    std::fill(slotActive.begin(), slotActive.end(), uint8_t{0});
    std::fill(slotReason.begin(), slotReason.end(),
              static_cast<uint8_t>(StallReason::NotSelected));
    std::fill(slotUnblock.begin(), slotUnblock.end(), uint64_t{0});
    std::fill(slotExpiry.begin(), slotExpiry.end(), uint64_t{0});
    std::fill(slotAge.begin(), slotAge.end(), uint64_t{0});
    std::fill(slotIsMem.begin(), slotIsMem.end(), uint8_t{0});
    std::fill(slotNeedsAlu.begin(), slotNeedsAlu.end(), uint8_t{0});
    std::fill(slotLanes.begin(), slotLanes.end(), uint8_t{0});
    for (auto &kind : readyKind)
        for (auto &list : kind)
            list.clear();
    std::fill(readyPos.begin(), readyPos.end(), -1);
    std::fill(residentBySched.begin(), residentBySched.end(), 0);
    dueHeap.clear();
    dueSlots.clear();
    issuedRecheck.clear();
    stallCount.fill(0);
    lsuFree = 0;
    residentWarps = 0;
    ageCounter = 0;
    parkedWarp = -1;
    idleUntil = 0;
    residentTraceBytes = 0;
    peakTraceBytes = 0;
    lastStall.fill(0);
    lastOcc.fill(0);

    const int warps_per_cta = launch->dims.warpsPerCta();
    panicIf(warps_per_cta <= 0, "launch with zero warps per CTA");
    panicIf(warps_per_cta > cfg.maxWarpsPerSm,
            "CTA needs more warps than an SM supports");
    maxResidentCtas = std::min(
        {cfg.maxCtasPerSm, cfg.maxWarpsPerSm / warps_per_cta,
         std::max(1, cfg.maxThreadsPerSm /
                         std::max(1, launch->dims.threadsPerCta))});
    ctas.assign(static_cast<size_t>(maxResidentCtas), CtaCtx{});
}

bool
Sm::hasFreeCtaSlot() const
{
    for (const auto &c : ctas) {
        if (!c.active)
            return true;
    }
    return false;
}

void
Sm::assignCta(int64_t cta_id, uint64_t cycle)
{
    CtaCtx *cta = nullptr;
    for (auto &c : ctas) {
        if (!c.active) {
            cta = &c;
            break;
        }
    }
    panicIf(!cta, "assignCta with no free CTA slot");

    const int warps_per_cta = launch->dims.warpsPerCta();
    cta->active = true;
    cta->ctaId = cta_id;
    cta->liveWarps = 0;
    cta->arrived = 0;
    cta->warpSlots.clear();
    cta->startCycle = cycle;
    cta->instrs = 0;

    for (int wi = 0; wi < warps_per_cta; ++wi) {
        int slot = -1;
        for (size_t i = 0; i < warps.size(); ++i) {
            if (!warps[i].active) {
                slot = static_cast<int>(i);
                break;
            }
        }
        panicIf(slot < 0, "no free warp slot for resident CTA");
        WarpCtx &w = warps[static_cast<size_t>(slot)];
        w.active = true;
        w.done = false;
        w.waitingBarrier = false;
        // The first chunk materializes lazily at the next step phase,
        // on this SM's owning worker — assignment stays cheap and
        // trace generation runs in parallel across SMs.
        w.chunk.clear();
        w.stream = launch->makeStream(cta_id, wi);
        w.streamDone = false;
        w.regCursor = 0;
        w.pc = 0;
        w.regReady.fill(0);
        w.regFromMem.reset();
        w.fetchReady = cycle + static_cast<uint64_t>(
                                   cfg.icacheColdLatency);
        w.atomicDrain = 0;
        w.cta = static_cast<int>(cta - ctas.data());
        w.ageStamp = ageCounter++;
        w.chunkBytes = 0;
        slotActive[static_cast<size_t>(slot)] = 1;
        slotAge[static_cast<size_t>(slot)] = w.ageStamp;
        slotExpiry[static_cast<size_t>(slot)] = 0; // classify at next step
        slotUnblock[static_cast<size_t>(slot)] = 0;
        // Slot (re)activation: enter the class count directly — the
        // stale reason of a previous occupant must not be debited.
        slotReason[static_cast<size_t>(slot)] =
            static_cast<uint8_t>(StallReason::NotSelected);
        ++stallCount[static_cast<size_t>(StallReason::NotSelected)];
        pushDue(0, slot);
        ++residentBySched[static_cast<size_t>(
            slot % cfg.numSchedulers)];
        cta->warpSlots.push_back(slot);
        ++cta->liveWarps;
        ++residentWarps;
    }
    stats->warpsSimulated += warps_per_cta;
    idleUntil = 0; // new warps change the SM's classification
}

void
Sm::refillChunk(WarpCtx &w)
{
    panicIf(w.streamDone, "trace stream ran past its EXIT");
    residentTraceBytes -= w.chunkBytes;
    w.chunk.clear();
    TraceBuilder tb(w.chunk, chunkBudget, w.regCursor);
    w.streamDone = w.stream(tb);
    panicIf(w.chunk.instrs.empty(), "trace stream made no progress");
    panicIf(w.streamDone && w.chunk.instrs.back().op != Op::EXIT,
            "warp trace must end with EXIT");
    w.pc = 0;
    w.chunkBytes =
        w.chunk.instrs.size() * sizeof(SimInstr) +
        w.chunk.addrs.size() * sizeof(uint64_t);
    residentTraceBytes += w.chunkBytes;
    if (residentTraceBytes > peakTraceBytes) {
        peakTraceBytes = residentTraceBytes;
        stats->traceBytesPeak = peakTraceBytes;
    }
}

void
Sm::pushDue(uint64_t key, int slot)
{
    // Lazy heap: entries are claims, validated against slotExpiry at
    // pop time. Compaction bounds the stale backlog; rebuilding from
    // the authoritative arrays cannot change any observable result.
    if (dueHeap.size() >
        static_cast<size_t>(8 * cfg.maxWarpsPerSm + 64)) {
        dueHeap.clear();
        for (int i = 0; i < cfg.maxWarpsPerSm; ++i) {
            if (slotActive[static_cast<size_t>(i)] &&
                slotExpiry[static_cast<size_t>(i)] != kNoEvent)
                dueHeap.push_back(
                    {slotExpiry[static_cast<size_t>(i)], i});
        }
        std::make_heap(dueHeap.begin(), dueHeap.end(), HeapLater{});
        if (slotExpiry[static_cast<size_t>(slot)] != kNoEvent)
            return; // the rebuild already holds this slot's claim
    }
    dueHeap.push_back({key, slot});
    std::push_heap(dueHeap.begin(), dueHeap.end(), HeapLater{});
}

void
Sm::setReason(int slot, StallReason reason)
{
    const size_t i = static_cast<size_t>(slot);
    const uint8_t next = static_cast<uint8_t>(reason);
    if (slotReason[i] == next)
        return;
    --stallCount[slotReason[i]];
    slotReason[i] = next;
    ++stallCount[next];
}

void
Sm::markDirty(int slot, uint64_t at_cycle)
{
    if (slotExpiry[static_cast<size_t>(slot)] > at_cycle) {
        slotExpiry[static_cast<size_t>(slot)] = at_cycle;
        pushDue(at_cycle, slot);
    }
}

void
Sm::readyInsert(int slot)
{
    const size_t i = static_cast<size_t>(slot);
    const uint8_t kind = slotNeedsAlu[i] ? kReadyAlu
                         : slotIsMem[i]  ? kReadyMem
                                         : kReadyOther;
    slotReadyKind[i] = kind;
    auto &list = readyKind[kind][static_cast<size_t>(
        slot % cfg.numSchedulers)];
    const uint64_t age = slotAge[i];
    size_t pos = list.size();
    while (pos > 0 &&
           slotAge[static_cast<size_t>(list[pos - 1])] > age)
        --pos;
    list.insert(list.begin() + static_cast<ptrdiff_t>(pos), slot);
    for (size_t j = pos; j < list.size(); ++j)
        readyPos[static_cast<size_t>(list[j])] =
            static_cast<int>(j);
}

void
Sm::readyRemove(int slot)
{
    const int pos = readyPos[static_cast<size_t>(slot)];
    if (pos < 0)
        return;
    auto &list = readyKind[slotReadyKind[static_cast<size_t>(slot)]]
                          [static_cast<size_t>(
                              slot % cfg.numSchedulers)];
    list.erase(list.begin() + pos);
    for (size_t j = static_cast<size_t>(pos); j < list.size(); ++j)
        readyPos[static_cast<size_t>(list[j])] =
            static_cast<int>(j);
    readyPos[static_cast<size_t>(slot)] = -1;
}

void
Sm::finalizeParkedMem()
{
    if (parkedWarp < 0)
        return;
    if (!mem.parkedComplete(smId))
        return; // slices still back-pressured: stay parked
    const uint64_t completion = mem.finishAccess(smId, *stats);
    WarpCtx &w = warps[static_cast<size_t>(parkedWarp)];
    switch (parkedKind) {
      case MemAccessKind::Load:
        w.regReady[parkedDst] = completion;
        w.regFromMem[parkedDst] = true;
        break;
      case MemAccessKind::Atomic:
        w.atomicDrain = std::max(w.atomicDrain, completion);
        break;
      case MemAccessKind::Store:
        break; // stores have no consumer-visible completion
    }
    markDirty(parkedWarp, 0); // completion can change the class now
    // finishAccess released L1 MSHR entries: a cached MshrFull class
    // may now clear earlier than its recorded unblock cycle.
    for (int i = 0; i < cfg.maxWarpsPerSm; ++i) {
        const size_t si = static_cast<size_t>(i);
        if (slotActive[si] &&
            slotReason[si] ==
                static_cast<uint8_t>(StallReason::MshrFull))
            markDirty(i, 0);
    }
    parkedWarp = -1;
}

void
Sm::drainParkedMem()
{
    panicIf(parkedWarp >= 0 && !mem.parkedComplete(smId),
            "drainParkedMem with unresolved sectors (the simulator "
            "must drain the slices first)");
    finalizeParkedMem();
}

Sm::Classification
Sm::classify(int slot, uint64_t cycle) const
{
    const WarpCtx &w = warps[static_cast<size_t>(slot)];
    if (w.waitingBarrier)
        return {StallReason::Synchronization, kNoEvent};
    if (w.fetchReady > cycle)
        return {StallReason::InstructionFetch, w.fetchReady};

    const SimInstr &in = w.chunk.instrs[w.pc];
    if (in.op == Op::EXIT && w.atomicDrain > cycle)
        return {StallReason::Synchronization, w.atomicDrain};
    // A warp whose store/atomic (or unconsumed load) is still parked
    // must not retire: finalizeParkedMem() writes into its slot, and
    // a freed slot could be re-assigned meanwhile.
    if (in.op == Op::EXIT && parkedWarp == slot)
        return {StallReason::Synchronization, kNoEvent};

    uint64_t dep_ready = 0;
    bool from_mem = false;
    const Reg regs[3] = {in.srcA, in.srcB, in.dst};
    for (Reg r : regs) {
        if (r == kNoReg)
            continue;
        const uint64_t ready = w.regReady[r];
        if (ready > cycle) {
            dep_ready = std::max(dep_ready, ready);
            from_mem |= w.regFromMem[r];
        }
    }
    if (dep_ready > cycle) {
        return {from_mem ? StallReason::MemoryDependency
                         : StallReason::ExecutionDependency,
                dep_ready};
    }
    if (isMemOp(in.op) && !mem.l1MshrReady(smId, cycle)) {
        // The L1 MSHR table is at its hit-under-miss limit: the LSU
        // cannot accept this memory instruction. The unblock event is
        // the earliest known entry release (kNoEvent while a release
        // is still in flight).
        return {StallReason::MshrFull,
                mem.l1MshrNextRelease(smId, cycle)};
    }
    return {StallReason::NotSelected, 0}; // ready to issue
}

/**
 * Re-derive the cached SoA classification of @p slot at @p cycle.
 *
 * Equivalent to classify(), plus the bookkeeping the fast path needs:
 * expired trace chunks refill here (slot-sweep order, matching the
 * reference pass), the decoded head is cached for hazard checks, the
 * expiry is set to the earliest cycle the cached class could read
 * differently (for dependency stalls that is the *earliest* blocking
 * register, because the memory/execution attribution can flip before
 * the stall clears), and ready-list membership is synced.
 */
void
Sm::reclassify(int slot, uint64_t cycle)
{
    WarpCtx &w = warps[static_cast<size_t>(slot)];
    if (w.pc >= w.chunk.instrs.size())
        refillChunk(w);
    ++stats->classifyEvals;

    const SimInstr &in = w.chunk.instrs[w.pc];
    StallReason reason;
    uint64_t unblock;
    uint64_t expiry;
    if (w.waitingBarrier) {
        reason = StallReason::Synchronization;
        unblock = kNoEvent;
        expiry = kNoEvent; // only a state change clears a barrier
    } else if (w.fetchReady > cycle) {
        reason = StallReason::InstructionFetch;
        unblock = w.fetchReady;
        expiry = w.fetchReady;
    } else if (in.op == Op::EXIT && w.atomicDrain > cycle) {
        reason = StallReason::Synchronization;
        unblock = w.atomicDrain;
        expiry = w.atomicDrain;
    } else if (in.op == Op::EXIT && parkedWarp == slot) {
        // Parked store/atomic (or unconsumed load) in flight: the
        // warp must stay resident until finalizeParkedMem(), which
        // marks this slot dirty. Re-check every cycle meanwhile (the
        // parked state pins the SM to real time anyway).
        reason = StallReason::Synchronization;
        unblock = kNoEvent;
        expiry = cycle + 1;
    } else {
        uint64_t dep_ready = 0;
        uint64_t dep_change = kNoEvent;
        bool from_mem = false;
        const Reg regs[3] = {in.srcA, in.srcB, in.dst};
        for (Reg r : regs) {
            if (r == kNoReg)
                continue;
            const uint64_t ready = w.regReady[r];
            if (ready > cycle) {
                dep_ready = std::max(dep_ready, ready);
                dep_change = std::min(dep_change, ready);
                from_mem |= w.regFromMem[r];
            }
        }
        if (dep_ready > cycle) {
            reason = from_mem ? StallReason::MemoryDependency
                              : StallReason::ExecutionDependency;
            unblock = dep_ready;
            expiry = dep_change;
        } else if (isMemOp(in.op) &&
                   !mem.l1MshrReady(smId, cycle)) {
            reason = StallReason::MshrFull;
            unblock = mem.l1MshrNextRelease(smId, cycle);
            // With an unknown release (a fill still in flight) the
            // class must be re-derived every cycle; otherwise the
            // earliest release is exactly when it can change.
            expiry = unblock == kNoEvent ? cycle + 1 : unblock;
        } else {
            reason = StallReason::NotSelected;
            unblock = 0;
            expiry = kNoEvent; // ready until issued or mutated
        }
    }

    const size_t i = static_cast<size_t>(slot);
    setReason(slot, reason);
    slotUnblock[i] = unblock;
    slotExpiry[i] = expiry;
    slotIsMem[i] = isMemOp(in.op) ? 1 : 0;
    slotNeedsAlu[i] = (in.op == Op::FP32 || in.op == Op::INT ||
                       in.op == Op::SFU)
                          ? 1
                          : 0;
    slotLanes[i] = static_cast<uint8_t>(in.activeLanes());

    if (expiry != kNoEvent)
        pushDue(expiry, slot);

    if (reason == StallReason::NotSelected) {
        if (readyPos[i] < 0)
            readyInsert(slot);
    } else if (readyPos[i] >= 0) {
        readyRemove(slot);
    }
}

void
Sm::releaseBarrierIfComplete(CtaCtx &cta, uint64_t cycle)
{
    if (cta.liveWarps == 0 || cta.arrived < cta.liveWarps)
        return;
    for (int slot : cta.warpSlots) {
        WarpCtx &w = warps[static_cast<size_t>(slot)];
        if (w.active && !w.done && w.waitingBarrier) {
            w.waitingBarrier = false;
            w.fetchReady = cycle + 1;
            markDirty(slot, cycle + 1);
        }
    }
    cta.arrived = 0;
}

void
Sm::finishWarp(int slot, uint64_t cycle)
{
    WarpCtx &w = warps[static_cast<size_t>(slot)];
    w.done = true;
    w.active = false;
    w.stream = nullptr;
    residentTraceBytes -= w.chunkBytes;
    w.chunkBytes = 0;
    slotActive[static_cast<size_t>(slot)] = 0;
    --stallCount[slotReason[static_cast<size_t>(slot)]];
    readyRemove(slot);
    --residentBySched[static_cast<size_t>(slot % cfg.numSchedulers)];
    --residentWarps;
    CtaCtx &cta = ctas[static_cast<size_t>(w.cta)];
    --cta.liveWarps;
    if (cta.liveWarps == 0) {
        cta.active = false;
        if (sampleRecords)
            sampleRecords->push_back(
                {cta.ctaId, cta.startCycle, cycle, cta.instrs});
    } else {
        releaseBarrierIfComplete(cta, cycle);
    }
}

OccBucket
Sm::bucketForLanes(int lanes) const
{
    if (lanes <= 8)
        return OccBucket::W8;
    if (lanes <= 20)
        return OccBucket::W20;
    return OccBucket::W32;
}

void
Sm::issueInstr(int slot, uint64_t cycle, int sched)
{
    WarpCtx &w = warps[static_cast<size_t>(slot)];
    const SimInstr &in = w.chunk.instrs[w.pc];

    stats->instrByClass[static_cast<size_t>(instrClassOf(in.op))] += 1;
    stats->warpInstrs += 1;
    stats->threadInstrs += static_cast<uint64_t>(in.activeLanes());
    if (sampleRecords)
        ctas[static_cast<size_t>(w.cta)].instrs += 1;

    // Default: the next instruction is fetchable next cycle.
    w.fetchReady = cycle + static_cast<uint64_t>(cfg.ifetchLatency);

    switch (in.op) {
      case Op::FP32:
      case Op::INT: {
        w.regReady[in.dst] =
            cycle + static_cast<uint64_t>(cfg.aluLatency);
        w.regFromMem[in.dst] = false;
        const uint64_t ii =
            static_cast<uint64_t>(cfg.aluInitiationInterval);
        aluFree[static_cast<size_t>(sched)] = cycle + ii;
        stats->aluBusyCycles += ii;
        break;
      }
      case Op::SFU: {
        w.regReady[in.dst] =
            cycle + static_cast<uint64_t>(cfg.sfuLatency);
        w.regFromMem[in.dst] = false;
        const uint64_t ii = 8;
        aluFree[static_cast<size_t>(sched)] = cycle + ii;
        stats->aluBusyCycles += ii;
        break;
      }
      case Op::CTRL:
        // Branch redirect: the front end needs a few cycles.
        w.fetchReady = cycle + 1 + 4;
        break;
      case Op::LDS:
        w.regReady[in.dst] =
            cycle + static_cast<uint64_t>(cfg.ldsLatency);
        w.regFromMem[in.dst] = false;
        lsuFree = cycle + 1;
        break;
      case Op::STS:
        lsuFree = cycle + 1;
        break;
      case Op::LDG: {
        MemAccessResult res;
        const bool done_now =
            mem.beginAccess(smId, cycle, w.chunk.addrsOf(in),
                            MemAccessKind::Load, *stats, res);
        if (done_now) {
            w.regReady[in.dst] = res.completion;
            w.regFromMem[in.dst] = true;
        } else {
            // Completion lands at a later step, once the slices
            // resolve every sector. Until then the destination is
            // "ready at an unknown cycle": consumers classify as
            // MemoryDependency instead of reading a stale 0.
            parkedWarp = slot;
            parkedDst = in.dst;
            parkedKind = MemAccessKind::Load;
            w.regReady[in.dst] = kNoEvent;
            w.regFromMem[in.dst] = true;
        }
        lsuFree = cycle + static_cast<uint64_t>(res.lsuCycles);
        break;
      }
      case Op::STG: {
        MemAccessResult res;
        const bool done_now =
            mem.beginAccess(smId, cycle, w.chunk.addrsOf(in),
                            MemAccessKind::Store, *stats, res);
        if (!done_now) {
            parkedWarp = slot;
            parkedDst = kNoReg;
            parkedKind = MemAccessKind::Store;
        }
        lsuFree = cycle + static_cast<uint64_t>(res.lsuCycles);
        break;
      }
      case Op::ATOM: {
        MemAccessResult res;
        const bool done_now =
            mem.beginAccess(smId, cycle, w.chunk.addrsOf(in),
                            MemAccessKind::Atomic, *stats, res);
        if (done_now) {
            w.atomicDrain = std::max(w.atomicDrain, res.completion);
        } else {
            parkedWarp = slot;
            parkedDst = kNoReg;
            parkedKind = MemAccessKind::Atomic;
        }
        lsuFree = cycle + static_cast<uint64_t>(res.lsuCycles);
        break;
      }
      case Op::BAR: {
        CtaCtx &cta = ctas[static_cast<size_t>(w.cta)];
        w.waitingBarrier = true;
        ++cta.arrived;
        ++w.pc;
        releaseBarrierIfComplete(cta, cycle);
        return; // pc already advanced
      }
      case Op::EXIT:
        ++w.pc;
        finishWarp(slot, cycle);
        return;
    }
    ++w.pc;
}

bool
Sm::stepCycle(uint64_t cycle, uint64_t &next_event)
{
    // Fold last cycle's resolved memory access into warp state before
    // anything classifies against it.
    finalizeParkedMem();

    // A still-parked access pins the SM to real time: the slices must
    // run resolveSlice() every cycle until every sector resolves, so
    // neither the per-SM idle replay nor the simulator's global
    // fast-forward may jump past those service cycles.
    if (parkedWarp >= 0) {
        idleUntil = 0;
        next_event = std::min(next_event, cycle + 1);
    }

    if (residentWarps == 0) {
        // Nothing resident: schedulers idle.
        lastStall.fill(0);
        lastOcc.fill(0);
        lastOcc[static_cast<size_t>(OccBucket::Idle)] +=
            static_cast<uint64_t>(cfg.numSchedulers);
        stats->occCycles[static_cast<size_t>(OccBucket::Idle)] +=
            static_cast<uint64_t>(cfg.numSchedulers);
        stats->schedulerSlots +=
            static_cast<uint64_t>(cfg.numSchedulers);
        return false;
    }

    // Nothing can change before idleUntil: replay the last
    // classification instead of recomputing it (cycle skipping).
    if (idleUntil > cycle) {
        accountExtra(1);
        next_event = std::min(next_event, idleUntil);
        return false;
    }

    return cfg.referenceIssue ? stepCycleReference(cycle, next_event)
                              : stepCycleFast(cycle, next_event);
}

/**
 * SoA fast path. Three stages, mirroring the reference passes:
 *
 *  A. batched sweep in slot order re-deriving only the expired
 *     cached classifications (and refilling their trace chunks —
 *     slot order fixes the refill order the footprint peak sees);
 *  B. per-scheduler issue from the incrementally maintained
 *     per-port ready lists (GTO: sticky first, else the oldest
 *     free-port head; LRR: rotation over the scheduler's fixed
 *     slot positions);
 *  C. stall/occupancy accounting from the incremental class census,
 *     with the stall-clear event sweep deferred to no-issue cycles.
 *
 * Produces bit-identical statistics to stepCycleReference() (except
 * the classifyEvals diagnostic): same per-cycle classifications,
 * same issue order, same refill order, same merged events.
 */
bool
Sm::stepCycleFast(uint64_t cycle, uint64_t &next_event)
{
    lastOcc.fill(0);

    // Stage A: drain every due expiry claim and re-derive those
    // classifications in slot-index order (slot order fixes the
    // chunk-refill order, which the trace-footprint peak sees).
    // Last cycle's issued slots are due by construction and skip
    // the heap entirely.
    dueSlots.clear();
    for (const int slot : issuedRecheck) {
        if (slotActive[static_cast<size_t>(slot)] &&
            slotExpiry[static_cast<size_t>(slot)] <= cycle)
            dueSlots.push_back(slot);
    }
    issuedRecheck.clear();
    while (!dueHeap.empty() && dueHeap.front().key <= cycle) {
        const int slot = dueHeap.front().slot;
        std::pop_heap(dueHeap.begin(), dueHeap.end(), HeapLater{});
        dueHeap.pop_back();
        if (slotActive[static_cast<size_t>(slot)] &&
            slotExpiry[static_cast<size_t>(slot)] <= cycle)
            dueSlots.push_back(slot);
    }
    if (dueSlots.size() > 1)
        std::sort(dueSlots.begin(), dueSlots.end());
    for (const int slot : dueSlots) {
        // Duplicate claims resolve here: the first visit raises the
        // expiry past `cycle`, later ones no-op.
        if (slotExpiry[static_cast<size_t>(slot)] <= cycle)
            reclassify(slot, cycle);
    }

    bool issued_any = false;
    bool any_port_block = false;
    uint64_t min_event = kNoEvent;

    const int ns = cfg.numSchedulers;
    for (int s = 0; s < ns; ++s) {
        const size_t ss = static_cast<size_t>(s);
        bool issued = false;
        bool structural = false;
        // Port states are re-read per scheduler: an earlier
        // scheduler's issue this cycle can occupy the shared LSU.
        // A parked access holds the LSU beyond lsuFree — the memory
        // system accepts one in-flight access per SM.
        const bool lsu_busy = lsuFree > cycle || mem.hasParked(smId);
        const bool alu_busy = aluFree[ss] > cycle;

        auto do_issue = [&](int slot) {
            const size_t i = static_cast<size_t>(slot);
            const OccBucket b =
                bucketForLanes(static_cast<int>(slotLanes[i]));
            const bool was_mem = slotIsMem[i] != 0;
            issueInstr(slot, cycle, s);
            if (was_mem && !mem.l1MshrReady(smId, cycle + 1)) {
                // The issue claimed L1 MSHR entries past the
                // hit-under-miss limit: cached classifications of
                // other memory-head warps are stale for next cycle.
                for (int j = 0; j < cfg.maxWarpsPerSm; ++j) {
                    const size_t sj = static_cast<size_t>(j);
                    if (slotActive[sj] && slotIsMem[sj])
                        markDirty(j, cycle + 1);
                }
            }
            // Count as Issued this cycle unless the warp just
            // finished (an issued EXIT leaves the stall attribution,
            // like the reference pass-3 skip of done warps);
            // re-derive next cycle (the post-issue head may also
            // need a chunk refill then).
            if (slotActive[i]) {
                setReason(slot, StallReason::Issued);
                slotExpiry[i] = cycle + 1;
                issuedRecheck.push_back(slot);
            }
            readyRemove(slot);
            issued = true;
            issued_any = true;
            lastOcc[static_cast<size_t>(b)] += 1;
        };

        /** A candidate the reference would attempt and reject. */
        auto blocked_attempt = [&](bool needs_alu) {
            structural = true;
            any_port_block = true;
            min_event = std::min(min_event,
                                 needs_alu ? aluFree[ss] : lsuFree);
        };

        if (cfg.scheduler == SchedulerPolicy::Gto) {
            // The reference attempts sticky first, then candidates
            // oldest-to-youngest, stopping at the first whose port
            // is free. With the ready lists segregated by port, that
            // first-issuable candidate is an O(1) head comparison,
            // and the candidates the reference would have attempted
            // and rejected before it are exactly the busy-port list
            // heads that are older (hazard merges are idempotent per
            // port, so heads stand in for all attempted members).
            int pick = -1;
            const int sticky = greedyWarp[ss];
            if (sticky >= 0 &&
                readyPos[static_cast<size_t>(sticky)] >= 0) {
                const size_t i = static_cast<size_t>(sticky);
                const bool na = slotNeedsAlu[i] != 0;
                if ((na && alu_busy) ||
                    (slotIsMem[i] != 0 && lsu_busy))
                    blocked_attempt(na);
                else
                    pick = sticky; // sticky wins outright
            }
            if (pick < 0) {
                const auto &ra = readyKind[kReadyAlu][ss];
                const auto &rm = readyKind[kReadyMem][ss];
                const auto &ro = readyKind[kReadyOther][ss];
                uint64_t pick_age = kNoEvent;
                if (!alu_busy && !ra.empty()) {
                    pick = ra.front();
                    pick_age =
                        slotAge[static_cast<size_t>(pick)];
                }
                if (!lsu_busy && !rm.empty() &&
                    slotAge[static_cast<size_t>(rm.front())] <
                        pick_age) {
                    pick = rm.front();
                    pick_age =
                        slotAge[static_cast<size_t>(pick)];
                }
                if (!ro.empty() &&
                    slotAge[static_cast<size_t>(ro.front())] <
                        pick_age) {
                    pick = ro.front();
                    pick_age =
                        slotAge[static_cast<size_t>(pick)];
                }
                // Blocked candidates older than the pick (all of
                // them when nothing is issuable) were attempted.
                if (alu_busy && !ra.empty() &&
                    slotAge[static_cast<size_t>(ra.front())] <
                        pick_age)
                    blocked_attempt(true);
                if (lsu_busy && !rm.empty() &&
                    slotAge[static_cast<size_t>(rm.front())] <
                        pick_age)
                    blocked_attempt(false);
            }
            if (pick >= 0) {
                do_issue(pick);
                greedyWarp[ss] = pick;
            }
        } else {
            // LRR: rotate over the scheduler's fixed slot positions,
            // attempting each ready candidate in rotation order.
            const int count = cfg.maxWarpsPerSm / ns;
            const int start =
                count > 0 ? rrCursor[ss] % count : 0;
            for (int k = 0; k < count; ++k) {
                const int slot = s + ((start + k) % count) * ns;
                const size_t i = static_cast<size_t>(slot);
                if (!slotActive[i])
                    continue;
                if (slotReason[i] !=
                    static_cast<uint8_t>(StallReason::NotSelected))
                    continue;
                const bool na = slotNeedsAlu[i] != 0;
                if ((na && alu_busy) ||
                    (slotIsMem[i] != 0 && lsu_busy)) {
                    blocked_attempt(na);
                    continue;
                }
                do_issue(slot);
                rrCursor[ss] = (k + 1) % count;
                break;
            }
        }

        if (!issued) {
            const bool has_warp = residentBySched[ss] > 0;
            const OccBucket b = (structural && has_warp)
                                    ? OccBucket::Stall
                                    : OccBucket::Idle;
            lastOcc[static_cast<size_t>(b)] += 1;
        }
    }

    // Stage C: the Fig. 6 attribution is the incrementally
    // maintained per-class census (identical to a sweep over the
    // resident warps). The merged stall-clear event is only ever
    // consumed on no-issue cycles — the simulator ignores next_event
    // whenever any SM issued, and idleUntil requires no local issue —
    // and every such cycle opens a fast-forward window, so the
    // unblock sweep runs only then instead of maintaining a second
    // heap on every classification change.
    lastStall = stallCount;
    if (!issued_any) {
        const int nw = cfg.maxWarpsPerSm;
        for (int i = 0; i < nw; ++i) {
            const size_t si = static_cast<size_t>(i);
            if (!slotActive[si])
                continue;
            if (slotReason[si] ==
                static_cast<uint8_t>(StallReason::NotSelected))
                continue;
            const uint64_t ev = slotUnblock[si];
            if (ev > cycle && ev != kNoEvent)
                min_event = std::min(min_event, ev);
        }
        // The reference path overwrites a port-blocked candidate's
        // event with 1 ("retry next cycle"), which reaches the merge
        // only at cycle 0; mirror that exactly.
        if (any_port_block && cycle < 1)
            min_event = std::min<uint64_t>(min_event, 1);

        // With no issue and all events known, this SM is frozen
        // until the earliest of them: later steps replay this
        // cycle's accounting.
        // A parked access makes events unknowable (MSHR releases
        // and the completion are still being resolved by the
        // slices), and finalizeParkedMem() clears the parked state
        // before the per-step pin re-zeroes idleUntil — so a freeze
        // taken now could replay a stale classification straight
        // past the wakeups the completion establishes.
        if (idleSkip && parkedWarp < 0 && min_event != kNoEvent &&
            min_event > cycle + 1) {
            idleUntil = min_event;
        }
    }

    for (int r = 0; r < kNumStallReasons; ++r)
        stats->stallCycles[static_cast<size_t>(r)] +=
            lastStall[static_cast<size_t>(r)];
    for (int b = 0; b < kNumOccBuckets; ++b)
        stats->occCycles[static_cast<size_t>(b)] +=
            lastOcc[static_cast<size_t>(b)];
    stats->schedulerSlots += static_cast<uint64_t>(ns);

    next_event = std::min(next_event, min_event);
    return issued_any;
}

/**
 * Pre-SoA reference path (GpuConfig::referenceIssue): classify every
 * resident warp every cycle and rescan scheduler slots. Kept verbatim
 * as the behavioural baseline the fast path is verified against.
 */
bool
Sm::stepCycleReference(uint64_t cycle, uint64_t &next_event)
{
    lastStall.fill(0);
    lastOcc.fill(0);

    // Pass 1: refill exhausted trace chunks, classify every resident
    // warp.
    for (size_t i = 0; i < warps.size(); ++i) {
        WarpCtx &w = warps[i];
        if (!w.active || w.done)
            continue;
        if (w.pc >= w.chunk.instrs.size())
            refillChunk(w);
        cls[i] = classify(static_cast<int>(i), cycle);
        ++stats->classifyEvals;
    }

    bool issued_any = false;
    uint64_t min_event = kNoEvent;

    // Pass 2: per-scheduler issue. GTO tries the sticky warp first
    // and then ready warps oldest-first; LRR rotates. Port-blocked
    // candidates are marked (event = 1) so they are not retried.
    const int ns = cfg.numSchedulers;
    for (int s = 0; s < ns; ++s) {
        bool issued = false;
        bool structural = false;
        bool has_warp = false;

        auto try_issue = [&](int slot) -> bool {
            // Returns true when the scheduler is done for this cycle.
            WarpCtx &w = warps[static_cast<size_t>(slot)];
            const SimInstr &in = w.chunk.instrs[w.pc];
            const bool is_mem = isMemOp(in.op);
            const bool needs_alu = in.op == Op::FP32 ||
                                   in.op == Op::INT ||
                                   in.op == Op::SFU;
            if (is_mem && (lsuFree > cycle || mem.hasParked(smId))) {
                structural = true;
                min_event = std::min(min_event, lsuFree);
                cls[static_cast<size_t>(slot)].event = 1;
                return false;
            }
            if (needs_alu &&
                aluFree[static_cast<size_t>(s)] > cycle) {
                structural = true;
                min_event = std::min(
                    min_event, aluFree[static_cast<size_t>(s)]);
                cls[static_cast<size_t>(slot)].event = 1;
                return false;
            }
            issueInstr(slot, cycle, s);
            cls[static_cast<size_t>(slot)].reason =
                StallReason::Issued;
            issued = true;
            issued_any = true;
            const OccBucket b = bucketForLanes(in.activeLanes());
            lastOcc[static_cast<size_t>(b)] += 1;
            return true;
        };

        if (cfg.scheduler == SchedulerPolicy::Gto) {
            // Selection without sorting: each round picks the sticky
            // warp if eligible, else the oldest eligible candidate —
            // the same order the sorted version visits.
            for (;;) {
                int best = -1;
                uint64_t best_age = kNoEvent;
                for (int slot = s; slot < cfg.maxWarpsPerSm;
                     slot += ns) {
                    const WarpCtx &w =
                        warps[static_cast<size_t>(slot)];
                    if (!w.active || w.done)
                        continue;
                    has_warp = true;
                    const Classification &c =
                        cls[static_cast<size_t>(slot)];
                    if (c.reason != StallReason::NotSelected ||
                        c.event != 0)
                        continue;
                    if (slot == greedyWarp[static_cast<size_t>(s)]) {
                        best = slot;
                        break;
                    }
                    if (w.ageStamp < best_age) {
                        best_age = w.ageStamp;
                        best = slot;
                    }
                }
                if (best < 0)
                    break;
                if (try_issue(best)) {
                    greedyWarp[static_cast<size_t>(s)] = best;
                    break;
                }
            }
        } else {
            const int count = cfg.maxWarpsPerSm / ns;
            const int start =
                count > 0
                    ? rrCursor[static_cast<size_t>(s)] % count
                    : 0;
            for (int k = 0; k < count; ++k) {
                const int slot = s + ((start + k) % count) * ns;
                const WarpCtx &w = warps[static_cast<size_t>(slot)];
                if (!w.active || w.done)
                    continue;
                has_warp = true;
                const Classification &c =
                    cls[static_cast<size_t>(slot)];
                if (c.reason != StallReason::NotSelected ||
                    c.event != 0)
                    continue;
                if (try_issue(slot)) {
                    rrCursor[static_cast<size_t>(s)] =
                        (k + 1) % count;
                    break;
                }
            }
        }

        if (!issued) {
            const OccBucket b = (structural && has_warp)
                                    ? OccBucket::Stall
                                    : OccBucket::Idle;
            lastOcc[static_cast<size_t>(b)] += 1;
        }
    }

    // Pass 3: stall accounting for every resident warp + event merge.
    for (size_t i = 0; i < warps.size(); ++i) {
        const WarpCtx &w = warps[i];
        if (!w.active || w.done)
            continue;
        lastStall[static_cast<size_t>(cls[i].reason)] += 1;
        if (cls[i].reason != StallReason::Issued &&
            cls[i].event > cycle && cls[i].event != kNoEvent)
            min_event = std::min(min_event, cls[i].event);
    }

    for (int r = 0; r < kNumStallReasons; ++r)
        stats->stallCycles[static_cast<size_t>(r)] +=
            lastStall[static_cast<size_t>(r)];
    for (int b = 0; b < kNumOccBuckets; ++b)
        stats->occCycles[static_cast<size_t>(b)] +=
            lastOcc[static_cast<size_t>(b)];
    stats->schedulerSlots += static_cast<uint64_t>(ns);

    // With no issue and all events known, this SM is frozen until the
    // earliest of them: later steps replay this cycle's accounting.
    // Never freeze while an access is parked: its resolution can
    // establish earlier wakeups than any currently-known event (see
    // the fast-path comment).
    if (idleSkip && !issued_any && parkedWarp < 0 &&
        min_event != kNoEvent && min_event > cycle + 1) {
        idleUntil = min_event;
    }

    next_event = std::min(next_event, min_event);
    return issued_any;
}

void
Sm::accountExtra(uint64_t delta)
{
    for (int r = 0; r < kNumStallReasons; ++r)
        stats->stallCycles[static_cast<size_t>(r)] +=
            lastStall[static_cast<size_t>(r)] * delta;
    for (int b = 0; b < kNumOccBuckets; ++b)
        stats->occCycles[static_cast<size_t>(b)] +=
            lastOcc[static_cast<size_t>(b)] * delta;
    stats->schedulerSlots +=
        static_cast<uint64_t>(cfg.numSchedulers) * delta;
    stats->fastForwardCycles += delta;
}

} // namespace gsuite
