#include "simgpu/Sm.hpp"

#include <algorithm>

#include "util/Logging.hpp"

namespace gsuite {

Sm::Sm(const GpuConfig &cfg, int sm_id, MemorySystem &mem)
    : cfg(cfg), smId(sm_id), mem(mem),
      warps(static_cast<size_t>(cfg.maxWarpsPerSm)),
      cls(static_cast<size_t>(cfg.maxWarpsPerSm)),
      aluFree(static_cast<size_t>(cfg.numSchedulers), 0),
      greedyWarp(static_cast<size_t>(cfg.numSchedulers), -1),
      rrCursor(static_cast<size_t>(cfg.numSchedulers), 0)
{
}

void
Sm::beginLaunch(const KernelLaunch *new_launch, KernelStats *new_stats,
                size_t chunk_instrs, bool idle_skip)
{
    launch = new_launch;
    stats = new_stats;
    chunkBudget = std::max<size_t>(1, chunk_instrs);
    idleSkip = idle_skip;
    for (auto &w : warps) {
        w.active = false;
        w.done = false;
        w.waitingBarrier = false;
        w.chunk.clear();
        w.stream = nullptr;
        w.streamDone = false;
        w.regCursor = 0;
        w.pc = 0;
        w.regReady.fill(0);
        w.regFromMem.reset();
        w.fetchReady = 0;
        w.atomicDrain = 0;
        w.cta = -1;
        w.chunkBytes = 0;
    }
    std::fill(aluFree.begin(), aluFree.end(), uint64_t{0});
    std::fill(greedyWarp.begin(), greedyWarp.end(), -1);
    std::fill(rrCursor.begin(), rrCursor.end(), 0);
    lsuFree = 0;
    residentWarps = 0;
    ageCounter = 0;
    parkedWarp = -1;
    idleUntil = 0;
    residentTraceBytes = 0;
    peakTraceBytes = 0;
    lastStall.fill(0);
    lastOcc.fill(0);

    const int warps_per_cta = launch->dims.warpsPerCta();
    panicIf(warps_per_cta <= 0, "launch with zero warps per CTA");
    panicIf(warps_per_cta > cfg.maxWarpsPerSm,
            "CTA needs more warps than an SM supports");
    maxResidentCtas = std::min(
        {cfg.maxCtasPerSm, cfg.maxWarpsPerSm / warps_per_cta,
         std::max(1, cfg.maxThreadsPerSm /
                         std::max(1, launch->dims.threadsPerCta))});
    ctas.assign(static_cast<size_t>(maxResidentCtas), CtaCtx{});
}

bool
Sm::hasFreeCtaSlot() const
{
    for (const auto &c : ctas) {
        if (!c.active)
            return true;
    }
    return false;
}

void
Sm::assignCta(int64_t cta_id, uint64_t cycle)
{
    CtaCtx *cta = nullptr;
    for (auto &c : ctas) {
        if (!c.active) {
            cta = &c;
            break;
        }
    }
    panicIf(!cta, "assignCta with no free CTA slot");

    const int warps_per_cta = launch->dims.warpsPerCta();
    cta->active = true;
    cta->ctaId = cta_id;
    cta->liveWarps = 0;
    cta->arrived = 0;
    cta->warpSlots.clear();

    for (int wi = 0; wi < warps_per_cta; ++wi) {
        int slot = -1;
        for (size_t i = 0; i < warps.size(); ++i) {
            if (!warps[i].active) {
                slot = static_cast<int>(i);
                break;
            }
        }
        panicIf(slot < 0, "no free warp slot for resident CTA");
        WarpCtx &w = warps[static_cast<size_t>(slot)];
        w.active = true;
        w.done = false;
        w.waitingBarrier = false;
        // The first chunk materializes lazily at the next step phase,
        // on this SM's owning worker — assignment stays cheap and
        // trace generation runs in parallel across SMs.
        w.chunk.clear();
        w.stream = launch->makeStream(cta_id, wi);
        w.streamDone = false;
        w.regCursor = 0;
        w.pc = 0;
        w.regReady.fill(0);
        w.regFromMem.reset();
        w.fetchReady = cycle + static_cast<uint64_t>(
                                   cfg.icacheColdLatency);
        w.atomicDrain = 0;
        w.cta = static_cast<int>(cta - ctas.data());
        w.ageStamp = ageCounter++;
        w.chunkBytes = 0;
        cta->warpSlots.push_back(slot);
        ++cta->liveWarps;
        ++residentWarps;
    }
    stats->warpsSimulated += warps_per_cta;
    idleUntil = 0; // new warps change the SM's classification
}

void
Sm::refillChunk(WarpCtx &w)
{
    panicIf(w.streamDone, "trace stream ran past its EXIT");
    residentTraceBytes -= w.chunkBytes;
    w.chunk.clear();
    TraceBuilder tb(w.chunk, chunkBudget, w.regCursor);
    w.streamDone = w.stream(tb);
    panicIf(w.chunk.instrs.empty(), "trace stream made no progress");
    panicIf(w.streamDone && w.chunk.instrs.back().op != Op::EXIT,
            "warp trace must end with EXIT");
    w.pc = 0;
    w.chunkBytes =
        w.chunk.instrs.size() * sizeof(SimInstr) +
        w.chunk.addrs.size() * sizeof(uint64_t);
    residentTraceBytes += w.chunkBytes;
    if (residentTraceBytes > peakTraceBytes) {
        peakTraceBytes = residentTraceBytes;
        stats->traceBytesPeak = peakTraceBytes;
    }
}

void
Sm::finalizeParkedMem()
{
    if (parkedWarp < 0)
        return;
    const uint64_t completion = mem.finishAccess(smId, *stats);
    WarpCtx &w = warps[static_cast<size_t>(parkedWarp)];
    switch (parkedKind) {
      case MemAccessKind::Load:
        w.regReady[parkedDst] = completion;
        w.regFromMem[parkedDst] = true;
        break;
      case MemAccessKind::Atomic:
        w.atomicDrain = std::max(w.atomicDrain, completion);
        break;
      case MemAccessKind::Store:
        break; // stores have no consumer-visible completion
    }
    parkedWarp = -1;
}

void
Sm::drainParkedMem()
{
    finalizeParkedMem();
}

Sm::Classification
Sm::classify(const WarpCtx &w, uint64_t cycle) const
{
    constexpr uint64_t kNoEvent = ~uint64_t{0};
    if (w.waitingBarrier)
        return {StallReason::Synchronization, kNoEvent};
    if (w.fetchReady > cycle)
        return {StallReason::InstructionFetch, w.fetchReady};

    const SimInstr &in = w.chunk.instrs[w.pc];
    if (in.op == Op::EXIT && w.atomicDrain > cycle)
        return {StallReason::Synchronization, w.atomicDrain};

    uint64_t dep_ready = 0;
    bool from_mem = false;
    const Reg regs[3] = {in.srcA, in.srcB, in.dst};
    for (Reg r : regs) {
        if (r == kNoReg)
            continue;
        const uint64_t ready = w.regReady[r];
        if (ready > cycle) {
            dep_ready = std::max(dep_ready, ready);
            from_mem |= w.regFromMem[r];
        }
    }
    if (dep_ready > cycle) {
        return {from_mem ? StallReason::MemoryDependency
                         : StallReason::ExecutionDependency,
                dep_ready};
    }
    return {StallReason::NotSelected, 0}; // ready to issue
}

void
Sm::releaseBarrierIfComplete(CtaCtx &cta, uint64_t cycle)
{
    if (cta.liveWarps == 0 || cta.arrived < cta.liveWarps)
        return;
    for (int slot : cta.warpSlots) {
        WarpCtx &w = warps[static_cast<size_t>(slot)];
        if (w.active && !w.done && w.waitingBarrier) {
            w.waitingBarrier = false;
            w.fetchReady = cycle + 1;
        }
    }
    cta.arrived = 0;
}

void
Sm::finishWarp(int slot, uint64_t cycle)
{
    WarpCtx &w = warps[static_cast<size_t>(slot)];
    w.done = true;
    w.active = false;
    w.stream = nullptr;
    residentTraceBytes -= w.chunkBytes;
    w.chunkBytes = 0;
    --residentWarps;
    CtaCtx &cta = ctas[static_cast<size_t>(w.cta)];
    --cta.liveWarps;
    if (cta.liveWarps == 0)
        cta.active = false;
    else
        releaseBarrierIfComplete(cta, cycle);
}

OccBucket
Sm::bucketForLanes(int lanes) const
{
    if (lanes <= 8)
        return OccBucket::W8;
    if (lanes <= 20)
        return OccBucket::W20;
    return OccBucket::W32;
}

void
Sm::issueInstr(int slot, uint64_t cycle, int sched)
{
    WarpCtx &w = warps[static_cast<size_t>(slot)];
    const SimInstr &in = w.chunk.instrs[w.pc];

    stats->instrByClass[static_cast<size_t>(instrClassOf(in.op))] += 1;
    stats->warpInstrs += 1;
    stats->threadInstrs += static_cast<uint64_t>(in.activeLanes());

    // Default: the next instruction is fetchable next cycle.
    w.fetchReady = cycle + static_cast<uint64_t>(cfg.ifetchLatency);

    switch (in.op) {
      case Op::FP32:
      case Op::INT: {
        w.regReady[in.dst] =
            cycle + static_cast<uint64_t>(cfg.aluLatency);
        w.regFromMem[in.dst] = false;
        const uint64_t ii =
            static_cast<uint64_t>(cfg.aluInitiationInterval);
        aluFree[static_cast<size_t>(sched)] = cycle + ii;
        stats->aluBusyCycles += ii;
        break;
      }
      case Op::SFU: {
        w.regReady[in.dst] =
            cycle + static_cast<uint64_t>(cfg.sfuLatency);
        w.regFromMem[in.dst] = false;
        const uint64_t ii = 8;
        aluFree[static_cast<size_t>(sched)] = cycle + ii;
        stats->aluBusyCycles += ii;
        break;
      }
      case Op::CTRL:
        // Branch redirect: the front end needs a few cycles.
        w.fetchReady = cycle + 1 + 4;
        break;
      case Op::LDS:
        w.regReady[in.dst] =
            cycle + static_cast<uint64_t>(cfg.ldsLatency);
        w.regFromMem[in.dst] = false;
        lsuFree = cycle + 1;
        break;
      case Op::STS:
        lsuFree = cycle + 1;
        break;
      case Op::LDG: {
        MemAccessResult res;
        const bool done_now =
            mem.beginAccess(smId, cycle, w.chunk.addrsOf(in),
                            MemAccessKind::Load, *stats, res);
        if (done_now) {
            w.regReady[in.dst] = res.completion;
            w.regFromMem[in.dst] = true;
        } else {
            // Completion lands at the next step, after the slices
            // resolve; no consumer can classify before then.
            parkedWarp = slot;
            parkedDst = in.dst;
            parkedKind = MemAccessKind::Load;
        }
        lsuFree = cycle + static_cast<uint64_t>(res.lsuCycles);
        break;
      }
      case Op::STG: {
        MemAccessResult res;
        const bool done_now =
            mem.beginAccess(smId, cycle, w.chunk.addrsOf(in),
                            MemAccessKind::Store, *stats, res);
        if (!done_now) {
            parkedWarp = slot;
            parkedDst = kNoReg;
            parkedKind = MemAccessKind::Store;
        }
        lsuFree = cycle + static_cast<uint64_t>(res.lsuCycles);
        break;
      }
      case Op::ATOM: {
        MemAccessResult res;
        const bool done_now =
            mem.beginAccess(smId, cycle, w.chunk.addrsOf(in),
                            MemAccessKind::Atomic, *stats, res);
        if (done_now) {
            w.atomicDrain = std::max(w.atomicDrain, res.completion);
        } else {
            parkedWarp = slot;
            parkedDst = kNoReg;
            parkedKind = MemAccessKind::Atomic;
        }
        lsuFree = cycle + static_cast<uint64_t>(res.lsuCycles);
        break;
      }
      case Op::BAR: {
        CtaCtx &cta = ctas[static_cast<size_t>(w.cta)];
        w.waitingBarrier = true;
        ++cta.arrived;
        ++w.pc;
        releaseBarrierIfComplete(cta, cycle);
        return; // pc already advanced
      }
      case Op::EXIT:
        ++w.pc;
        finishWarp(slot, cycle);
        return;
    }
    ++w.pc;
}

bool
Sm::stepCycle(uint64_t cycle, uint64_t &next_event)
{
    constexpr uint64_t kNoEvent = ~uint64_t{0};

    // Fold last cycle's resolved memory access into warp state before
    // anything classifies against it.
    finalizeParkedMem();

    if (residentWarps == 0) {
        // Nothing resident: schedulers idle.
        lastStall.fill(0);
        lastOcc.fill(0);
        lastOcc[static_cast<size_t>(OccBucket::Idle)] +=
            static_cast<uint64_t>(cfg.numSchedulers);
        stats->occCycles[static_cast<size_t>(OccBucket::Idle)] +=
            static_cast<uint64_t>(cfg.numSchedulers);
        stats->schedulerSlots +=
            static_cast<uint64_t>(cfg.numSchedulers);
        return false;
    }

    // Nothing can change before idleUntil: replay the last
    // classification instead of recomputing it.
    if (idleUntil > cycle) {
        accountExtra(1);
        next_event = std::min(next_event, idleUntil);
        return false;
    }

    lastStall.fill(0);
    lastOcc.fill(0);

    // Pass 1: refill exhausted trace chunks, classify every resident
    // warp.
    for (size_t i = 0; i < warps.size(); ++i) {
        WarpCtx &w = warps[i];
        if (!w.active || w.done)
            continue;
        if (w.pc >= w.chunk.instrs.size())
            refillChunk(w);
        cls[i] = classify(w, cycle);
    }

    bool issued_any = false;
    uint64_t min_event = kNoEvent;

    // Pass 2: per-scheduler issue. GTO tries the sticky warp first
    // and then ready warps oldest-first; LRR rotates. Port-blocked
    // candidates are marked (event = 1) so they are not retried.
    const int ns = cfg.numSchedulers;
    for (int s = 0; s < ns; ++s) {
        bool issued = false;
        bool structural = false;
        bool has_warp = false;

        auto try_issue = [&](int slot) -> bool {
            // Returns true when the scheduler is done for this cycle.
            WarpCtx &w = warps[static_cast<size_t>(slot)];
            const SimInstr &in = w.chunk.instrs[w.pc];
            const bool is_mem = isMemOp(in.op);
            const bool needs_alu = in.op == Op::FP32 ||
                                   in.op == Op::INT ||
                                   in.op == Op::SFU;
            if (is_mem && lsuFree > cycle) {
                structural = true;
                min_event = std::min(min_event, lsuFree);
                cls[static_cast<size_t>(slot)].event = 1;
                return false;
            }
            if (needs_alu &&
                aluFree[static_cast<size_t>(s)] > cycle) {
                structural = true;
                min_event = std::min(
                    min_event, aluFree[static_cast<size_t>(s)]);
                cls[static_cast<size_t>(slot)].event = 1;
                return false;
            }
            issueInstr(slot, cycle, s);
            cls[static_cast<size_t>(slot)].reason =
                StallReason::Issued;
            issued = true;
            issued_any = true;
            const OccBucket b = bucketForLanes(in.activeLanes());
            lastOcc[static_cast<size_t>(b)] += 1;
            return true;
        };

        if (cfg.scheduler == SchedulerPolicy::Gto) {
            // Selection without sorting: each round picks the sticky
            // warp if eligible, else the oldest eligible candidate —
            // the same order the sorted version visits.
            for (;;) {
                int best = -1;
                uint64_t best_age = ~uint64_t{0};
                for (int slot = s; slot < cfg.maxWarpsPerSm;
                     slot += ns) {
                    const WarpCtx &w =
                        warps[static_cast<size_t>(slot)];
                    if (!w.active || w.done)
                        continue;
                    has_warp = true;
                    const Classification &c =
                        cls[static_cast<size_t>(slot)];
                    if (c.reason != StallReason::NotSelected ||
                        c.event != 0)
                        continue;
                    if (slot == greedyWarp[static_cast<size_t>(s)]) {
                        best = slot;
                        break;
                    }
                    if (w.ageStamp < best_age) {
                        best_age = w.ageStamp;
                        best = slot;
                    }
                }
                if (best < 0)
                    break;
                if (try_issue(best)) {
                    greedyWarp[static_cast<size_t>(s)] = best;
                    break;
                }
            }
        } else {
            const int count = cfg.maxWarpsPerSm / ns;
            const int start =
                count > 0
                    ? rrCursor[static_cast<size_t>(s)] % count
                    : 0;
            for (int k = 0; k < count; ++k) {
                const int slot = s + ((start + k) % count) * ns;
                const WarpCtx &w = warps[static_cast<size_t>(slot)];
                if (!w.active || w.done)
                    continue;
                has_warp = true;
                const Classification &c =
                    cls[static_cast<size_t>(slot)];
                if (c.reason != StallReason::NotSelected ||
                    c.event != 0)
                    continue;
                if (try_issue(slot)) {
                    rrCursor[static_cast<size_t>(s)] =
                        (k + 1) % count;
                    break;
                }
            }
        }

        if (!issued) {
            const OccBucket b = (structural && has_warp)
                                    ? OccBucket::Stall
                                    : OccBucket::Idle;
            lastOcc[static_cast<size_t>(b)] += 1;
        }
    }

    // Pass 3: stall accounting for every resident warp + event merge.
    for (size_t i = 0; i < warps.size(); ++i) {
        const WarpCtx &w = warps[i];
        if (!w.active || w.done)
            continue;
        lastStall[static_cast<size_t>(cls[i].reason)] += 1;
        if (cls[i].reason != StallReason::Issued &&
            cls[i].event > cycle && cls[i].event != kNoEvent)
            min_event = std::min(min_event, cls[i].event);
    }

    for (int r = 0; r < kNumStallReasons; ++r)
        stats->stallCycles[static_cast<size_t>(r)] +=
            lastStall[static_cast<size_t>(r)];
    for (int b = 0; b < kNumOccBuckets; ++b)
        stats->occCycles[static_cast<size_t>(b)] +=
            lastOcc[static_cast<size_t>(b)];
    stats->schedulerSlots += static_cast<uint64_t>(ns);

    // With no issue and all events known, this SM is frozen until the
    // earliest of them: later steps replay this cycle's accounting.
    if (idleSkip && !issued_any && min_event != kNoEvent &&
        min_event > cycle + 1)
        idleUntil = min_event;

    next_event = std::min(next_event, min_event);
    return issued_any;
}

void
Sm::accountExtra(uint64_t delta)
{
    for (int r = 0; r < kNumStallReasons; ++r)
        stats->stallCycles[static_cast<size_t>(r)] +=
            lastStall[static_cast<size_t>(r)] * delta;
    for (int b = 0; b < kNumOccBuckets; ++b)
        stats->occCycles[static_cast<size_t>(b)] +=
            lastOcc[static_cast<size_t>(b)] * delta;
    stats->schedulerSlots +=
        static_cast<uint64_t>(cfg.numSchedulers) * delta;
}

} // namespace gsuite
