/**
 * @file
 * Configuration of the timing-detailed GPU model.
 *
 * The default models an NVIDIA V100 (Volta) the way the paper's
 * GPGPU-Sim 4.0 configuration does. For tractability on a CPU host we
 * simulate a sampled subset of SMs (smSampleFactor); all reported
 * statistics are ratios (hit rates, stall shares, occupancy), which
 * are unaffected by homogeneous SM sampling.
 */

#ifndef GSUITE_SIMGPU_GPUCONFIG_HPP
#define GSUITE_SIMGPU_GPUCONFIG_HPP

#include <cstdint>
#include <string>

namespace gsuite {

/** Warp scheduler arbitration policy. */
enum class SchedulerPolicy {
    Gto, ///< greedy-then-oldest (GPGPU-Sim default)
    Lrr, ///< loose round-robin
};

/** Parse "gto"/"lrr"; fatal() on unknown names. */
SchedulerPolicy schedulerPolicyFromName(const std::string &name);

/** Canonical lowercase name. */
const char *schedulerPolicyName(SchedulerPolicy p);

/** DRAM request-scheduler arbitration per slice channel. */
enum class DramSchedPolicy {
    Frfcfs, ///< first-ready (open-row hits first), then oldest
    Fcfs,   ///< strictly oldest-first
};

/** Parse "frfcfs"/"fcfs"; fatal() on unknown names. */
DramSchedPolicy dramSchedPolicyFromName(const std::string &name);

/** Canonical lowercase name. */
const char *dramSchedPolicyName(DramSchedPolicy p);

/**
 * CTA-sampled cycle simulation. Off simulates the usual CTA prefix;
 * Cta cycle-simulates only a deterministic stratified sample of that
 * prefix and extrapolates counters with error bounds (see
 * CtaSampler.hpp).
 */
enum class CtaSampleMode {
    Off, ///< full prefix, today's behaviour (default)
    Cta, ///< stratified CTA sample + extrapolation
};

/** Parse "off"/"cta"; fatal() on unknown names. */
CtaSampleMode ctaSampleModeFromName(const std::string &name);

/** Canonical lowercase name. */
const char *ctaSampleModeName(CtaSampleMode m);

/**
 * Finite miss-status-holding-register table of one cache level
 * (gpgpusim's -gpgpu_cache:dl1 ...,A:<entries>:<merges> vocabulary).
 */
struct MshrConfig {
    int entries = 32;  ///< outstanding-miss table entries
    int maxMerges = 8; ///< same-line accesses merged into one entry
    /**
     * Busy entries tolerated before the level stops accepting new
     * accesses (<= entries; equal means "stall only when full").
     * At the L1 this is the SM back-pressure point, surfaced as the
     * MshrFull stall class.
     */
    int hitUnderMiss = 32;

    bool operator==(const MshrConfig &) const = default;
};

/**
 * Banked DRAM timing and scheduling of one L2-slice channel
 * (gpgpusim's -gpgpu_dram_timing_opt nbk=..:CCD=..:RCD=..:RAS=..:RP=..
 * and -gpgpu_frfcfs_dram_sched_queue_size vocabulary).
 */
struct DramConfig {
    int numBanks = 16;  ///< nbk: banks per channel (power of two)
    int rowBytes = 2048; ///< row-buffer footprint per bank
    int tRcd = 14; ///< activate -> column command (cycles)
    int tRas = 33; ///< activate -> precharge minimum
    int tRp = 14;  ///< precharge -> activate
    int tCcd = 2;  ///< column -> column on one bank
    DramSchedPolicy scheduler = DramSchedPolicy::Frfcfs;
    /**
     * Bounded request queue: sectors a slice admits per cycle. A
     * full queue rejects the sector, which keeps its SM's access
     * parked (multi-cycle back-pressure all the way to the LSU).
     */
    int schedQueueSize = 64;

    bool operator==(const DramConfig &) const = default;
};

/** Geometry of one cache level. */
struct CacheGeometry {
    uint64_t sizeBytes = 0;
    int lineBytes = 128;
    int sectorBytes = 32;
    int assoc = 4;
    /** Allocate a line on write miss (L2) or write around it (L1). */
    bool allocateOnWrite = false;

    int numSets() const
    {
        return static_cast<int>(sizeBytes /
                                (static_cast<uint64_t>(lineBytes) *
                                 static_cast<uint64_t>(assoc)));
    }
    int sectorsPerLine() const { return lineBytes / sectorBytes; }

    bool operator==(const CacheGeometry &) const = default;
};

/** Full GPU model configuration. */
struct GpuConfig {
    std::string name = "v100-sim";

    // --- core geometry -------------------------------------------------
    int numSms = 8;          ///< simulated SMs (sampled subset)
    int smSampleFactor = 10; ///< modeled GPU has numSms * this SMs
    int warpSize = 32;
    int maxWarpsPerSm = 64;
    int maxThreadsPerSm = 2048;
    int maxCtasPerSm = 32;
    int numSchedulers = 4; ///< warp schedulers per SM

    SchedulerPolicy scheduler = SchedulerPolicy::Gto;

    /**
     * Debug/ablation: use the pre-SoA per-warp issue path (classify
     * every resident warp every cycle) instead of the cached SoA
     * fast path. Both paths produce bit-identical statistics except
     * the classifyEvals diagnostic; the reference path is kept for
     * A/B regression tests and as the honest baseline in
     * bench_sim_throughput.
     */
    bool referenceIssue = false;

    // --- execution latencies -------------------------------------------
    int aluLatency = 4;  ///< FP32/INT result latency (cycles)
    int sfuLatency = 16; ///< transcendental latency
    int aluInitiationInterval = 2; ///< 32-wide warp over 16-lane SIMD
    int ldsLatency = 24; ///< shared-memory load latency

    // --- instruction fetch ----------------------------------------------
    int icacheColdLatency = 60; ///< first fetch after warp activation
    int ifetchLatency = 1;      ///< steady-state i-buffer refill

    // --- memory system ---------------------------------------------------
    int lsuPortsPerSm = 1;  ///< memory instructions accepted per cycle
    int l1Latency = 28;     ///< L1 hit latency (Volta ~28 cycles)
    int l2Latency = 190;    ///< L1-miss/L2-hit round trip
    int dramLatency = 360;  ///< L2-miss round trip before queueing
    bool l1BypassLoads = false; ///< ablation: global loads skip L1

    /**
     * DRAM bandwidth available to the sampled SM subset, in bytes per
     * core cycle. V100: 900 GB/s at 1.38 GHz core clock ~ 652 B/cyc
     * for 80 SMs => 8.15 B/cyc per SM.
     */
    double dramBytesPerCyclePerSm = 8.15;

    CacheGeometry l1d{128 * 1024, 128, 32, 64, false};
    CacheGeometry l2{3 * 1024 * 1024, 128, 32, 24, true};

    /**
     * Finite MSHR tables. The L1 table tracks every in-flight sector
     * an SM has outstanding toward its slice (loads, stores and
     * atomics alike — the miss path is one queue); the L2 table is
     * per slice. A full L1 table back-pressures the SM's LSU
     * (StallReason::MshrFull).
     */
    MshrConfig l1Mshr{32, 8, 32};
    MshrConfig l2Mshr{64, 8, 64};

    /** Banked DRAM model behind each L2 slice. */
    DramConfig dram{};

    /**
     * Address-sliced L2/DRAM banking: line addresses are distributed
     * round-robin over this many independent slices, each owning
     * 1/numL2Slices of the L2 capacity and DRAM bandwidth. Slices are
     * the unit of parallelism (and of deterministic ownership) in the
     * memory system; results do not depend on how many worker threads
     * service them. Must be a power of two and divide l2's set count.
     */
    int numL2Slices = 4;

    double coreClockGhz = 1.38;

    // --- sampled simulation ----------------------------------------------
    /**
     * CTA-sampled cycle simulation (hwdb keys sample.mode /
     * sample.fraction / sample.min_ctas / sample.seed). Off by
     * default: every deterministic counter is byte-identical to the
     * pre-sampling simulator. In Cta mode the simulator picks a
     * deterministic stratified sample of the CTA population it would
     * otherwise simulate, runs only those CTAs through the cycle
     * model, and reports extrapolated est_* counters with err_*
     * bounds alongside the raw sampled counters.
     */
    CtaSampleMode sampleMode = CtaSampleMode::Off;
    /** Target sampled fraction of the CTA population, in (0, 1]. */
    double sampleFraction = 0.125;
    /**
     * Sampling never engages below this many CTAs: populations of at
     * most sampleMinCtas (after fraction rounding) run in full, so
     * small launches stay exact even in Cta mode.
     */
    int64_t sampleMinCtas = 256;
    /** Seed mixed with kernel identity + launch shape. */
    uint64_t sampleSeed = 1;

    // --- tracing (src/obs) ----------------------------------------------
    /**
     * gpgpusim-style trace knobs (-trace_enabled, -trace_components,
     * -trace_sampling_core), exposed as the hwdb keys trace.enabled /
     * trace.components / trace.sampling_core. Tracing is observation
     * only: enabling it changes no deterministic counter (pinned by
     * golden_stats_test). traceComponents is the canonical comma list
     * accepted by parseTraceComponents ("all", "engine,sm", ...);
     * traceSamplingCore picks the SM whose warp-scheduler state the
     * "sm" component samples.
     */
    bool traceEnabled = false;
    std::string traceComponents = "all";
    int traceSamplingCore = 0;

    /** Total DRAM bytes/cycle for the simulated subset. */
    double
    dramBytesPerCycle() const
    {
        return dramBytesPerCyclePerSm * numSms;
    }

    /** The paper's GPGPU-Sim-like V100 model (default values). */
    static GpuConfig v100Sim();

    /**
     * A small configuration for unit tests: 2 SMs, tiny caches, so
     * cache behaviour is observable with small footprints.
     */
    static GpuConfig testTiny();

    /** Sanity-check parameter consistency; fatal() on bad config. */
    void validate() const;

    /** Field-wise equality (hwdb round-trip guarantee). */
    bool operator==(const GpuConfig &) const = default;
};

} // namespace gsuite

#endif // GSUITE_SIMGPU_GPUCONFIG_HPP
