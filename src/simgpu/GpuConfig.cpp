#include "simgpu/GpuConfig.hpp"

#include "obs/TraceSink.hpp"
#include "util/Logging.hpp"
#include "util/StringUtils.hpp"

namespace gsuite {

SchedulerPolicy
schedulerPolicyFromName(const std::string &name)
{
    const std::string n = toLower(trim(name));
    if (n == "gto" || n == "greedy")
        return SchedulerPolicy::Gto;
    if (n == "lrr" || n == "rr" || n == "round-robin")
        return SchedulerPolicy::Lrr;
    fatal("unknown scheduler '%s' (known: gto, lrr)", name.c_str());
}

const char *
schedulerPolicyName(SchedulerPolicy p)
{
    switch (p) {
      case SchedulerPolicy::Gto: return "gto";
      case SchedulerPolicy::Lrr: return "lrr";
    }
    panic("unknown SchedulerPolicy");
}

DramSchedPolicy
dramSchedPolicyFromName(const std::string &name)
{
    const std::string n = toLower(trim(name));
    if (n == "frfcfs" || n == "fr-fcfs")
        return DramSchedPolicy::Frfcfs;
    if (n == "fcfs" || n == "fifo")
        return DramSchedPolicy::Fcfs;
    fatal("unknown DRAM scheduler '%s' (known: frfcfs, fcfs)",
          name.c_str());
}

const char *
dramSchedPolicyName(DramSchedPolicy p)
{
    switch (p) {
      case DramSchedPolicy::Frfcfs: return "frfcfs";
      case DramSchedPolicy::Fcfs: return "fcfs";
    }
    panic("unknown DramSchedPolicy");
}

CtaSampleMode
ctaSampleModeFromName(const std::string &name)
{
    const std::string n = toLower(trim(name));
    if (n == "off" || n == "full" || n == "none")
        return CtaSampleMode::Off;
    if (n == "cta")
        return CtaSampleMode::Cta;
    fatal("unknown sample mode '%s' (known: off, cta)", name.c_str());
}

const char *
ctaSampleModeName(CtaSampleMode m)
{
    switch (m) {
      case CtaSampleMode::Off: return "off";
      case CtaSampleMode::Cta: return "cta";
    }
    panic("unknown CtaSampleMode");
}

GpuConfig
GpuConfig::v100Sim()
{
    return GpuConfig{};
}

GpuConfig
GpuConfig::testTiny()
{
    GpuConfig cfg;
    cfg.name = "test-tiny";
    cfg.numSms = 2;
    cfg.smSampleFactor = 1;
    cfg.maxWarpsPerSm = 8;
    cfg.maxThreadsPerSm = 256;
    cfg.maxCtasPerSm = 4;
    cfg.numSchedulers = 2;
    cfg.l1d = {4 * 1024, 128, 32, 4, false};
    cfg.l2 = {16 * 1024, 128, 32, 8, true};
    // Small enough that unit tests can drive the machine into MSHR
    // back-pressure and queue rejection with modest footprints.
    cfg.l1Mshr = {8, 4, 8};
    cfg.l2Mshr = {16, 4, 16};
    cfg.dram = {4, 512, 12, 28, 12, 2, DramSchedPolicy::Frfcfs, 8};
    return cfg;
}

void
GpuConfig::validate() const
{
    if (numSms <= 0 || warpSize != 32)
        fatal("GpuConfig: numSms must be positive and warpSize 32");
    if (maxWarpsPerSm <= 0 || numSchedulers <= 0)
        fatal("GpuConfig: bad SM geometry");
    if (maxWarpsPerSm % numSchedulers != 0)
        fatal("GpuConfig: maxWarpsPerSm must divide by numSchedulers");
    if (smSampleFactor <= 0 || maxThreadsPerSm <= 0 ||
        maxCtasPerSm <= 0)
        fatal("GpuConfig: SM capacities must be positive");
    if (aluLatency <= 0 || sfuLatency <= 0 ||
        aluInitiationInterval <= 0 || ldsLatency <= 0 ||
        icacheColdLatency <= 0 || ifetchLatency <= 0 ||
        l1Latency <= 0 || l2Latency <= 0 || dramLatency <= 0)
        fatal("GpuConfig: latencies must be positive cycles");
    if (lsuPortsPerSm <= 0)
        fatal("GpuConfig: lsuPortsPerSm must be positive");
    if (coreClockGhz <= 0.0)
        fatal("GpuConfig: core clock must be positive");
    auto check_cache = [](const CacheGeometry &g, const char *label) {
        if (g.lineBytes <= 0 || g.sectorBytes <= 0 || g.assoc <= 0 ||
            g.lineBytes % g.sectorBytes != 0)
            fatal("GpuConfig: %s line/sector geometry invalid", label);
        if (g.numSets() <= 0)
            fatal("GpuConfig: %s too small for its associativity",
                  label);
        if ((g.numSets() & (g.numSets() - 1)) != 0)
            fatal("GpuConfig: %s set count must be a power of two",
                  label);
    };
    check_cache(l1d, "L1D");
    check_cache(l2, "L2");
    // The coalescer forms sectors at L1 granularity and the L2/DRAM
    // accounting reuses those same addresses at L2 granularity; a
    // mismatch would silently skew every L2 hit-rate and dramBytes
    // counter, so it is fatal rather than a warning.
    if (l1d.sectorBytes != l2.sectorBytes)
        fatal("GpuConfig: l1d.sector_bytes (%d) must equal "
              "l2.sector_bytes (%d): coalescing happens at L1 sector "
              "granularity and L2/DRAM accounting reuses it",
              l1d.sectorBytes, l2.sectorBytes);
    auto check_mshr = [](const MshrConfig &m, const char *label) {
        if (m.entries <= 0 || m.maxMerges <= 0)
            fatal("GpuConfig: %s MSHR entries/merges must be "
                  "positive", label);
        if (m.hitUnderMiss <= 0 || m.hitUnderMiss > m.entries)
            fatal("GpuConfig: %s MSHR hit-under-miss must be in "
                  "[1, entries]", label);
    };
    check_mshr(l1Mshr, "L1");
    check_mshr(l2Mshr, "L2");
    if (dram.numBanks < 1 ||
        (dram.numBanks & (dram.numBanks - 1)) != 0)
        fatal("GpuConfig: mem.dram_banks must be a positive power "
              "of two");
    if (dram.rowBytes < l2.sectorBytes ||
        dram.rowBytes % l2.sectorBytes != 0 ||
        (dram.rowBytes & (dram.rowBytes - 1)) != 0)
        fatal("GpuConfig: mem.dram_row_bytes must be a power of two "
              "multiple of the L2 sector size");
    if (dram.tRcd <= 0 || dram.tRas <= 0 || dram.tRp <= 0 ||
        dram.tCcd <= 0)
        fatal("GpuConfig: DRAM timing parameters must be positive "
              "cycles");
    if (dram.schedQueueSize <= 0)
        fatal("GpuConfig: mem.dram_sched_queue_size must be "
              "positive");
    if (dramBytesPerCyclePerSm <= 0)
        fatal("GpuConfig: DRAM bandwidth must be positive");
    if (numL2Slices < 1 ||
        (numL2Slices & (numL2Slices - 1)) != 0)
        fatal("GpuConfig: numL2Slices must be a positive power of two");
    if (l2.numSets() % numL2Slices != 0 ||
        l2.numSets() / numL2Slices < 1)
        fatal("GpuConfig: numL2Slices must divide the L2 set count");
    CacheGeometry slice = l2;
    slice.sizeBytes = l2.sizeBytes / static_cast<uint64_t>(numL2Slices);
    check_cache(slice, "L2 slice");
    if (!(sampleFraction > 0.0) || sampleFraction > 1.0)
        fatal("GpuConfig: sample.fraction must be in (0, 1]");
    if (sampleMinCtas < 1)
        fatal("GpuConfig: sample.min_ctas must be at least 1");
    if (traceSamplingCore < 0 || traceSamplingCore >= numSms)
        fatal("GpuConfig: trace.sampling_core must be in [0,%d)",
              numSms);
    unsigned mask = 0;
    if (!tryParseTraceComponents(traceComponents, mask))
        fatal("GpuConfig: bad trace.components '%s'",
              traceComponents.c_str());
}

} // namespace gsuite
