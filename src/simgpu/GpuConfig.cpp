#include "simgpu/GpuConfig.hpp"

#include "obs/TraceSink.hpp"
#include "util/Logging.hpp"
#include "util/StringUtils.hpp"

namespace gsuite {

SchedulerPolicy
schedulerPolicyFromName(const std::string &name)
{
    const std::string n = toLower(trim(name));
    if (n == "gto" || n == "greedy")
        return SchedulerPolicy::Gto;
    if (n == "lrr" || n == "rr" || n == "round-robin")
        return SchedulerPolicy::Lrr;
    fatal("unknown scheduler '%s' (known: gto, lrr)", name.c_str());
}

const char *
schedulerPolicyName(SchedulerPolicy p)
{
    switch (p) {
      case SchedulerPolicy::Gto: return "gto";
      case SchedulerPolicy::Lrr: return "lrr";
    }
    panic("unknown SchedulerPolicy");
}

GpuConfig
GpuConfig::v100Sim()
{
    return GpuConfig{};
}

GpuConfig
GpuConfig::testTiny()
{
    GpuConfig cfg;
    cfg.name = "test-tiny";
    cfg.numSms = 2;
    cfg.smSampleFactor = 1;
    cfg.maxWarpsPerSm = 8;
    cfg.maxThreadsPerSm = 256;
    cfg.maxCtasPerSm = 4;
    cfg.numSchedulers = 2;
    cfg.l1d = {4 * 1024, 128, 32, 4, false};
    cfg.l2 = {16 * 1024, 128, 32, 8, true};
    return cfg;
}

void
GpuConfig::validate() const
{
    if (numSms <= 0 || warpSize != 32)
        fatal("GpuConfig: numSms must be positive and warpSize 32");
    if (maxWarpsPerSm <= 0 || numSchedulers <= 0)
        fatal("GpuConfig: bad SM geometry");
    if (maxWarpsPerSm % numSchedulers != 0)
        fatal("GpuConfig: maxWarpsPerSm must divide by numSchedulers");
    if (smSampleFactor <= 0 || maxThreadsPerSm <= 0 ||
        maxCtasPerSm <= 0)
        fatal("GpuConfig: SM capacities must be positive");
    if (aluLatency <= 0 || sfuLatency <= 0 ||
        aluInitiationInterval <= 0 || ldsLatency <= 0 ||
        icacheColdLatency <= 0 || ifetchLatency <= 0 ||
        l1Latency <= 0 || l2Latency <= 0 || dramLatency <= 0)
        fatal("GpuConfig: latencies must be positive cycles");
    if (lsuPortsPerSm <= 0)
        fatal("GpuConfig: lsuPortsPerSm must be positive");
    if (coreClockGhz <= 0.0)
        fatal("GpuConfig: core clock must be positive");
    auto check_cache = [](const CacheGeometry &g, const char *label) {
        if (g.lineBytes <= 0 || g.sectorBytes <= 0 || g.assoc <= 0 ||
            g.lineBytes % g.sectorBytes != 0)
            fatal("GpuConfig: %s line/sector geometry invalid", label);
        if (g.numSets() <= 0)
            fatal("GpuConfig: %s too small for its associativity",
                  label);
        if ((g.numSets() & (g.numSets() - 1)) != 0)
            fatal("GpuConfig: %s set count must be a power of two",
                  label);
    };
    check_cache(l1d, "L1D");
    check_cache(l2, "L2");
    if (dramBytesPerCyclePerSm <= 0)
        fatal("GpuConfig: DRAM bandwidth must be positive");
    if (numL2Slices < 1 ||
        (numL2Slices & (numL2Slices - 1)) != 0)
        fatal("GpuConfig: numL2Slices must be a positive power of two");
    if (l2.numSets() % numL2Slices != 0 ||
        l2.numSets() / numL2Slices < 1)
        fatal("GpuConfig: numL2Slices must divide the L2 set count");
    CacheGeometry slice = l2;
    slice.sizeBytes = l2.sizeBytes / static_cast<uint64_t>(numL2Slices);
    check_cache(slice, "L2 slice");
    if (traceSamplingCore < 0 || traceSamplingCore >= numSms)
        fatal("GpuConfig: trace.sampling_core must be in [0,%d)",
              numSms);
    unsigned mask = 0;
    if (!tryParseTraceComponents(traceComponents, mask))
        fatal("GpuConfig: bad trace.components '%s'",
              traceComponents.c_str());
}

} // namespace gsuite
