/**
 * @file
 * Virtual device address assignment.
 *
 * Host buffers that kernels touch are registered here to obtain
 * stable 256-byte-aligned "device" addresses; trace generators derive
 * per-lane global addresses from them so the cache models see the
 * same aliasing/locality structure a real GPU allocation would.
 */

#ifndef GSUITE_SIMGPU_DEVICEALLOCATOR_HPP
#define GSUITE_SIMGPU_DEVICEALLOCATOR_HPP

#include <cstdint>
#include <unordered_map>

namespace gsuite {

/** Bump allocator over a fake device address space. */
class DeviceAllocator
{
  public:
    DeviceAllocator() = default;

    /**
     * Register a host buffer and return its device base address.
     * Re-registering the same pointer returns the existing mapping
     * (buffers keep stable addresses across kernels in a pipeline).
     */
    uint64_t map(const void *host_ptr, uint64_t bytes);

    /** Device address of a registered buffer; panic() if unknown. */
    uint64_t addressOf(const void *host_ptr) const;

    /** True if the pointer is registered. */
    bool isMapped(const void *host_ptr) const;

    /** Total bytes allocated so far. */
    uint64_t bytesAllocated() const { return cursor - kBase; }

    /**
     * High-water mark of bytesAllocated(). A bump allocator never
     * frees, so today this equals bytesAllocated() — it is tracked
     * separately so the measured naive peak survives any future
     * free/reuse semantics and so frozen plan-backed runs can report
     * the peak the naive layout reached.
     */
    uint64_t bytesPeak() const { return peak; }

    /**
     * Freeze the address layout: map() keeps returning existing
     * mappings but fatal()s on an unknown pointer. The plan-backed
     * placement mode (src/memplan) pre-maps every declared span in
     * canonical schedule order and then freezes, so addresses no
     * longer depend on execution order — and any span a kernel maps
     * without declaring it in ioSpans() is caught loudly instead of
     * silently perturbing the layout.
     */
    void freeze() { frozen = true; }
    /** Re-enable on-demand mapping (end of a plan-backed run). */
    void thaw() { frozen = false; }
    bool isFrozen() const { return frozen; }

    /** Forget all mappings (new pipeline run). */
    void reset();

  private:
    static constexpr uint64_t kBase = 0x7f00'0000'0000ULL;
    static constexpr uint64_t kAlign = 256;

    uint64_t cursor = kBase;
    uint64_t peak = 0;
    bool frozen = false;
    std::unordered_map<const void *, uint64_t> mappings;
};

} // namespace gsuite

#endif // GSUITE_SIMGPU_DEVICEALLOCATOR_HPP
