/**
 * @file
 * Virtual device address assignment.
 *
 * Host buffers that kernels touch are registered here to obtain
 * stable 256-byte-aligned "device" addresses; trace generators derive
 * per-lane global addresses from them so the cache models see the
 * same aliasing/locality structure a real GPU allocation would.
 */

#ifndef GSUITE_SIMGPU_DEVICEALLOCATOR_HPP
#define GSUITE_SIMGPU_DEVICEALLOCATOR_HPP

#include <cstdint>
#include <unordered_map>

namespace gsuite {

/** Bump allocator over a fake device address space. */
class DeviceAllocator
{
  public:
    DeviceAllocator() = default;

    /**
     * Register a host buffer and return its device base address.
     * Re-registering the same pointer returns the existing mapping
     * (buffers keep stable addresses across kernels in a pipeline).
     */
    uint64_t map(const void *host_ptr, uint64_t bytes);

    /** Device address of a registered buffer; panic() if unknown. */
    uint64_t addressOf(const void *host_ptr) const;

    /** True if the pointer is registered. */
    bool isMapped(const void *host_ptr) const;

    /** Total bytes allocated so far. */
    uint64_t bytesAllocated() const { return cursor - kBase; }

    /** Forget all mappings (new pipeline run). */
    void reset();

  private:
    static constexpr uint64_t kBase = 0x7f00'0000'0000ULL;
    static constexpr uint64_t kAlign = 256;

    uint64_t cursor = kBase;
    std::unordered_map<const void *, uint64_t> mappings;
};

} // namespace gsuite

#endif // GSUITE_SIMGPU_DEVICEALLOCATOR_HPP
