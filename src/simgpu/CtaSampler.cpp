#include "simgpu/CtaSampler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "util/Logging.hpp"

namespace gsuite {

namespace {

/** splitmix64: well-mixed 64-bit hash step (public domain). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
hashString(const std::string &s)
{
    // FNV-1a, folded through mix64 for avalanche.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s)
        h = (h ^ c) * 0x100000001b3ULL;
    return mix64(h);
}

/**
 * Error bound multipliers: 3 sigma of the stratified standard error
 * plus a floor absorbing the model error the SE cannot see (ratio
 * estimator bias, partial-wave boundary effects). Calibrated against
 * bench_sampled_sim's full-run comparisons.
 */
constexpr double kErrSigma = 3.0;
constexpr double kErrFloorWork = 0.02;
constexpr double kErrFloorCycles = 0.04;

/**
 * Minimum sample size in units of full machine co-residency waves.
 * The cycle extrapolation is a ratio estimator that assumes the
 * sampled run is throughput-saturated like the full run; a sample
 * that fits in one partial wave underfills the SMs and the observed
 * cycles stop scaling with CTA count (a 32-CTA sample on a machine
 * with 64 concurrent CTA slots overestimates the full makespan by
 * the whole sampling ratio). Four waves keeps the steady-state share
 * of the makespan dominant.
 */
constexpr int64_t kSaturationWaves = 4;

/** Per-stratum accumulator of one per-CTA measure. */
struct StratAcc {
    double cnt = 0.0;
    double sum = 0.0;
    double sumSq = 0.0;

    void
    add(double v)
    {
        cnt += 1.0;
        sum += v;
        sumSq += v * v;
    }
};

/**
 * Stratified expansion estimate of the population total, plus its
 * relative standard error (finite-population corrected). Strata with
 * no completed CTA fall back to the overall sample mean with a
 * conservative unit relative variance.
 */
struct StratEstimate {
    double total = 0.0;
    double relSe = 0.0;
};

StratEstimate
stratifiedTotal(const std::vector<StratAcc> &acc,
                const std::vector<int64_t> &stratum_size)
{
    double overall_cnt = 0.0, overall_sum = 0.0;
    for (const StratAcc &a : acc) {
        overall_cnt += a.cnt;
        overall_sum += a.sum;
    }
    const double overall_mean =
        overall_cnt > 0.0 ? overall_sum / overall_cnt : 0.0;

    double total = 0.0, var = 0.0;
    for (size_t h = 0; h < acc.size(); ++h) {
        const double nh = static_cast<double>(stratum_size[h]);
        const StratAcc &a = acc[h];
        double mean, s2;
        if (a.cnt <= 0.0) {
            mean = overall_mean;
            s2 = overall_mean * overall_mean;
        } else if (a.cnt < 2.0) {
            mean = a.sum;
            // One observation: no within-stratum variance estimate;
            // assume unit relative spread.
            s2 = mean * mean;
        } else {
            mean = a.sum / a.cnt;
            s2 = (a.sumSq - a.cnt * mean * mean) / (a.cnt - 1.0);
            s2 = std::max(s2, 0.0);
        }
        total += nh * mean;
        const double sampled = std::max(a.cnt, 1.0);
        if (nh > sampled)
            var += nh * (nh - sampled) * s2 / sampled;
    }
    StratEstimate e;
    e.total = total;
    e.relSe = total > 0.0 ? std::sqrt(var) / total : 0.0;
    return e;
}

} // namespace

CtaSamplePlan
buildCtaSamplePlan(const GpuConfig &cfg, const KernelLaunch &launch,
                   int64_t population, int64_t maxSampled)
{
    CtaSamplePlan plan;
    plan.population = population;
    if (cfg.sampleMode != CtaSampleMode::Cta || population <= 1)
        return plan;

    int64_t n = static_cast<int64_t>(
        std::llround(static_cast<double>(population) *
                     cfg.sampleFraction));
    n = std::max(n, cfg.sampleMinCtas);

    // Saturation floor: enough CTAs to fill every SM's co-residency
    // slots (the Sm::beginLaunch formula) for kSaturationWaves waves.
    // Launches too small to saturate fall through to n >= population
    // below and run exact.
    const int warps_per_cta = launch.dims.warpsPerCta();
    const int64_t slots_per_sm = std::min(
        {static_cast<int64_t>(cfg.maxCtasPerSm),
         static_cast<int64_t>(cfg.maxWarpsPerSm /
                              std::max(1, warps_per_cta)),
         std::max<int64_t>(
             1, cfg.maxThreadsPerSm /
                    std::max<int64_t>(1,
                                      launch.dims.threadsPerCta))});
    n = std::max(n, kSaturationWaves * cfg.numSms *
                        std::max<int64_t>(1, slots_per_sm));

    if (maxSampled > 0)
        n = std::min(n, maxSampled);
    n = std::min(n, population);
    if (n >= population)
        return plan; // sample would be the whole prefix: stay exact

    // Rank the population by per-CTA cost (trace-length proxy).
    // Without a hint the ranking is the identity, which still strata
    // by grid position — useful when cost correlates with CTA id.
    std::vector<uint64_t> weight(
        static_cast<size_t>(population), 1);
    if (launch.ctaCostHint)
        for (int64_t c = 0; c < population; ++c)
            weight[static_cast<size_t>(c)] =
                std::max<uint64_t>(1, launch.ctaCostHint(c));
    std::vector<int64_t> ranked(static_cast<size_t>(population));
    std::iota(ranked.begin(), ranked.end(), int64_t{0});
    std::stable_sort(ranked.begin(), ranked.end(),
                     [&](int64_t a, int64_t b) {
                         return weight[static_cast<size_t>(a)] <
                                weight[static_cast<size_t>(b)];
                     });

    const int strata = static_cast<int>(
        std::max<int64_t>(1, std::min<int64_t>(8, n / 32)));
    plan.stratumSize.resize(static_cast<size_t>(strata));
    plan.stratumSampled.assign(static_cast<size_t>(strata), 0);

    // Equal-size contiguous strata of the ranked order.
    std::vector<int64_t> begin(static_cast<size_t>(strata) + 1);
    for (int h = 0; h <= strata; ++h)
        begin[static_cast<size_t>(h)] =
            population * h / strata;
    for (int h = 0; h < strata; ++h)
        plan.stratumSize[static_cast<size_t>(h)] =
            begin[static_cast<size_t>(h) + 1] -
            begin[static_cast<size_t>(h)];

    // Proportional allocation by largest remainder (deterministic
    // tie-break on stratum index), then pin every stratum to >= 1.
    std::vector<double> frac(static_cast<size_t>(strata));
    int64_t allocated = 0;
    for (int h = 0; h < strata; ++h) {
        const double exact =
            static_cast<double>(n) *
            static_cast<double>(
                plan.stratumSize[static_cast<size_t>(h)]) /
            static_cast<double>(population);
        const int64_t base = static_cast<int64_t>(exact);
        plan.stratumSampled[static_cast<size_t>(h)] = base;
        frac[static_cast<size_t>(h)] =
            exact - static_cast<double>(base);
        allocated += base;
    }
    while (allocated < n) {
        int best = 0;
        for (int h = 1; h < strata; ++h)
            if (frac[static_cast<size_t>(h)] >
                frac[static_cast<size_t>(best)])
                best = h;
        frac[static_cast<size_t>(best)] = -1.0;
        ++plan.stratumSampled[static_cast<size_t>(best)];
        ++allocated;
    }
    for (int h = 0; h < strata; ++h) {
        auto &nh = plan.stratumSampled[static_cast<size_t>(h)];
        nh = std::min(nh, plan.stratumSize[static_cast<size_t>(h)]);
        if (nh < 1) {
            int donor = 0;
            for (int g = 1; g < strata; ++g)
                if (plan.stratumSampled[static_cast<size_t>(g)] >
                    plan.stratumSampled[static_cast<size_t>(donor)])
                    donor = g;
            if (plan.stratumSampled[static_cast<size_t>(donor)] > 1) {
                --plan.stratumSampled[static_cast<size_t>(donor)];
                nh = 1;
            }
        }
    }

    // Systematic sample inside each stratum: fixed stride through the
    // ranked order, seeded fractional start. Seeded by kernel
    // identity + launch shape, so a rerun (or another thread count)
    // draws the byte-identical sample.
    uint64_t seed = mix64(cfg.sampleSeed);
    seed = mix64(seed ^ hashString(launch.name));
    seed = mix64(seed ^ static_cast<uint64_t>(launch.dims.numCtas));
    seed =
        mix64(seed ^ static_cast<uint64_t>(launch.dims.threadsPerCta));
    seed = mix64(seed ^ static_cast<uint64_t>(population));

    std::vector<std::vector<int64_t>> picks(
        static_cast<size_t>(strata));
    for (int h = 0; h < strata; ++h) {
        const int64_t sz = plan.stratumSize[static_cast<size_t>(h)];
        const int64_t nh =
            plan.stratumSampled[static_cast<size_t>(h)];
        if (nh <= 0)
            continue;
        const double stride = static_cast<double>(sz) /
                              static_cast<double>(nh);
        const uint64_t r =
            mix64(seed ^ (0x9e3779b97f4a7c15ULL *
                          static_cast<uint64_t>(h + 1)));
        const double start =
            (static_cast<double>(r >> 11) * 0x1.0p-53) * stride;
        int64_t prev = -1;
        for (int64_t i = 0; i < nh; ++i) {
            int64_t pos = static_cast<int64_t>(
                start + stride * static_cast<double>(i));
            pos = std::max(pos, prev + 1);
            pos = std::min(pos, sz - 1);
            prev = pos;
            picks[static_cast<size_t>(h)].push_back(
                ranked[static_cast<size_t>(
                    begin[static_cast<size_t>(h)] + pos)]);
        }
    }

    // Feed the sample to the machine in grid order. Membership is
    // stratified, but execution order must mimic a real launch: a
    // round-robin interleave of the cost-ranked strata imposes a
    // periodic heavy/light arrival pattern that resonates with SM
    // slot reuse and degrades DRAM row locality relative to a full
    // run (measured at +11% makespan even for a near-1.0 fraction
    // whose sample is practically the whole population), biasing the
    // ratio estimator upward. Grid order reproduces the full run's
    // arrival mix exactly on the sampled subset.
    std::vector<std::pair<int64_t, int>> ordered;
    ordered.reserve(static_cast<size_t>(n));
    for (int h = 0; h < strata; ++h)
        for (int64_t id : picks[static_cast<size_t>(h)])
            ordered.emplace_back(id, h);
    std::sort(ordered.begin(), ordered.end());
    plan.order.reserve(ordered.size());
    plan.stratumOf.reserve(ordered.size());
    for (const auto &[id, h] : ordered) {
        plan.order.push_back(id);
        plan.stratumOf.push_back(h);
    }
    plan.engaged = true;
    return plan;
}

void
extrapolateCtaSample(const CtaSamplePlan &plan,
                     const std::vector<CtaSampleRecord> &records,
                     KernelStats &stats)
{
    if (!plan.engaged)
        return;
    stats.sampledCtas = static_cast<int64_t>(plan.order.size());
    stats.sampleStrata = plan.numStrata();
    stats.estimates.clear();
    if (records.empty() || stats.cycles == 0)
        return; // nothing completed: raw counters stand alone

    std::unordered_map<int64_t, int> stratum_of;
    stratum_of.reserve(plan.order.size());
    for (size_t i = 0; i < plan.order.size(); ++i)
        stratum_of.emplace(plan.order[i], plan.stratumOf[i]);

    const int strata = plan.numStrata();
    std::vector<StratAcc> dur(static_cast<size_t>(strata));
    std::vector<StratAcc> work(static_cast<size_t>(strata));
    double sum_dur = 0.0, sum_work = 0.0;
    for (const CtaSampleRecord &r : records) {
        const auto it = stratum_of.find(r.ctaId);
        if (it == stratum_of.end())
            continue;
        const double d = static_cast<double>(
            r.endCycle - std::min(r.startCycle, r.endCycle));
        const double q = static_cast<double>(r.instrs);
        dur[static_cast<size_t>(it->second)].add(d);
        work[static_cast<size_t>(it->second)].add(q);
        sum_dur += d;
        sum_work += q;
    }
    if (sum_dur <= 0.0 || sum_work <= 0.0)
        return;

    const StratEstimate est_dur =
        stratifiedTotal(dur, plan.stratumSize);
    const StratEstimate est_work =
        stratifiedTotal(work, plan.stratumSize);

    // Ratio estimator for wall cycles: the sampled run achieved
    // sum_dur / cycles CTA-parallelism; the population's CTA-cycles
    // at the same parallelism take est_dur / that.
    const double cycle_scale = est_dur.total / sum_dur;
    const double work_scale = est_work.total / sum_work;
    const double err_cycles =
        kErrSigma * est_dur.relSe + kErrFloorCycles;
    const double err_work =
        kErrSigma * est_work.relSe + kErrFloorWork;

    auto emit = [&](const std::string &name, double raw,
                    double scale, double rel_err) {
        const double est = raw * scale;
        stats.estimates.push_back({name, est, est * rel_err});
    };
    auto emit_cycles = [&](const std::string &name, double raw) {
        emit(name, raw, cycle_scale, err_cycles);
    };
    auto emit_work = [&](const std::string &name, double raw) {
        emit(name, raw, work_scale, err_work);
    };

    emit_cycles("cycles", static_cast<double>(stats.cycles));

    // Exact by construction: every CTA has the same warp count.
    const double count_scale =
        static_cast<double>(plan.population) /
        static_cast<double>(plan.order.size());
    stats.estimates.push_back(
        {"warps",
         static_cast<double>(stats.warpsSimulated) * count_scale,
         0.0});

    emit_work("warp_instrs", static_cast<double>(stats.warpInstrs));
    emit_work("thread_instrs",
              static_cast<double>(stats.threadInstrs));
    for (int c = 0; c < kNumInstrClasses; ++c)
        emit_work(std::string("instr_") +
                      instrClassName(static_cast<InstrClass>(c)),
                  static_cast<double>(
                      stats.instrByClass[static_cast<size_t>(c)]));
    for (int r = 0; r < kNumStallReasons; ++r)
        emit_cycles(std::string("stall_") +
                        stallReasonName(static_cast<StallReason>(r)),
                    static_cast<double>(
                        stats.stallCycles[static_cast<size_t>(r)]));
    for (int b = 0; b < kNumOccBuckets; ++b)
        emit_cycles(std::string("occ_") +
                        occBucketName(static_cast<OccBucket>(b)),
                    static_cast<double>(
                        stats.occCycles[static_cast<size_t>(b)]));
    emit_work("l1_hits", static_cast<double>(stats.l1Hits));
    emit_work("l1_misses", static_cast<double>(stats.l1Misses));
    emit_work("l2_hits", static_cast<double>(stats.l2Hits));
    emit_work("l2_misses", static_cast<double>(stats.l2Misses));
    emit_work("mem_instrs", static_cast<double>(stats.memInstrs));
    emit_work("mem_sectors", static_cast<double>(stats.memSectors));
    emit_work("dram_bytes", static_cast<double>(stats.dramBytes));
    emit_cycles("dram_busy_cycles",
                static_cast<double>(stats.dramBusyCycles));
    emit_work("dram_row_hits",
              static_cast<double>(stats.dramRowHits));
    emit_work("dram_row_misses",
              static_cast<double>(stats.dramRowMisses));
    emit_work("alu_busy_cycles",
              static_cast<double>(stats.aluBusyCycles));
    emit_cycles("scheduler_slots",
                static_cast<double>(stats.schedulerSlots));
    emit_cycles("mshr_stall_cycles",
                static_cast<double>(
                    stats.stallCycles[static_cast<size_t>(
                        StallReason::MshrFull)]));
}

} // namespace gsuite
