#include "simgpu/Cache.hpp"

#include "util/Logging.hpp"

namespace gsuite {

Cache::Cache(const CacheGeometry &geometry)
    : geo(geometry), numSets(geometry.numSets()),
      lines(static_cast<size_t>(numSets) *
            static_cast<size_t>(geometry.assoc))
{
    panicIf(geo.sectorsPerLine() > kMaxSectors,
            "cache line has more sectors than the model supports");
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return addr / static_cast<uint64_t>(geo.lineBytes) /
           static_cast<uint64_t>(numSets);
}

int
Cache::setOf(uint64_t addr) const
{
    return static_cast<int>((addr / static_cast<uint64_t>(geo.lineBytes)) &
                            static_cast<uint64_t>(numSets - 1));
}

int
Cache::sectorOf(uint64_t addr) const
{
    return static_cast<int>((addr % static_cast<uint64_t>(geo.lineBytes)) /
                            static_cast<uint64_t>(geo.sectorBytes));
}

Cache::Line *
Cache::findLine(uint64_t addr)
{
    const uint64_t tag = tagOf(addr);
    Line *set = &lines[static_cast<size_t>(setOf(addr)) *
                       static_cast<size_t>(geo.assoc)];
    for (int w = 0; w < geo.assoc; ++w) {
        if (set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

CacheProbe
Cache::probe(uint64_t addr, uint64_t now)
{
    Line *line = findLine(addr);
    if (!line)
        return {};
    const int sector = sectorOf(addr);
    if (!(line->sectorValid & (1u << sector)))
        return {};
    line->lastUse = now;
    return {true, line->sectorReady[sector]};
}

void
Cache::fill(uint64_t addr, uint64_t now, uint64_t ready)
{
    Line *line = findLine(addr);
    if (!line) {
        // Evict the LRU way of the set.
        Line *set = &lines[static_cast<size_t>(setOf(addr)) *
                           static_cast<size_t>(geo.assoc)];
        line = &set[0];
        for (int w = 1; w < geo.assoc; ++w) {
            if (set[w].tag == kInvalidTag) {
                line = &set[w];
                break;
            }
            if (set[w].lastUse < line->lastUse)
                line = &set[w];
        }
        line->tag = tagOf(addr);
        line->sectorValid = 0;
    }
    const int sector = sectorOf(addr);
    line->sectorValid |= 1u << sector;
    line->sectorReady[sector] = ready;
    line->lastUse = now;
}

void
Cache::flush()
{
    for (auto &line : lines)
        line = Line{};
}

} // namespace gsuite
