#include "simgpu/MemLevel.hpp"

#include <algorithm>
#include <cstddef>

#include "util/Logging.hpp"

namespace gsuite {

// --- MshrTable --------------------------------------------------------

void
MshrTable::configure(const MshrConfig &c)
{
    cfg = c;
    entries.assign(static_cast<size_t>(cfg.entries), Entry{});
}

void
MshrTable::reset()
{
    for (Entry &e : entries) {
        e.used = false;
        e.releaseAt = 0;
        e.merges = 0;
    }
}

bool
MshrTable::ready(uint64_t cycle) const
{
    int busy = 0;
    for (const Entry &e : entries) {
        if (busyAt(e, cycle) && ++busy >= cfg.hitUnderMiss)
            return false;
    }
    return true;
}

uint64_t
MshrTable::nextRelease(uint64_t cycle) const
{
    uint64_t next = 0;
    for (const Entry &e : entries) {
        if (!busyAt(e, cycle))
            continue;
        if (e.releaseAt == kPendingRelease)
            return kPendingRelease; // unknown: re-poll next cycle
        next = next ? std::min(next, e.releaseAt) : e.releaseAt;
    }
    return next;
}

int
MshrTable::acquire(uint64_t line, uint64_t &at)
{
    // Merge: a busy same-line entry under the merge cap absorbs the
    // access without consuming a new entry (the sector still travels
    // to the next level — sectored caches fetch per sector — but the
    // table tracks one miss for the whole line). The merged miss is
    // now the entry's latest in-flight fill, so its release reverts
    // to pending — extending a known releaseAt later instead would
    // flip the entry back to busy retroactively, i.e. the table
    // could go ready -> full without an acquire, which the issue
    // logic is allowed to assume never happens.
    for (size_t i = 0; i < entries.size(); ++i) {
        Entry &e = entries[i];
        if (busyAt(e, at) && e.line == line &&
            e.merges < cfg.maxMerges) {
            ++e.merges;
            e.releaseAt = kPendingRelease;
            return static_cast<int>(i);
        }
    }
    for (;;) {
        for (size_t i = 0; i < entries.size(); ++i) {
            Entry &e = entries[i];
            if (busyAt(e, at))
                continue;
            e.line = line;
            e.releaseAt = kPendingRelease;
            e.merges = 1;
            e.used = true;
            return static_cast<int>(i);
        }
        // Full: wait for the earliest known release, then retake.
        const uint64_t rel = nextRelease(at);
        if (rel == kPendingRelease || rel == 0)
            return -1; // nothing releases at a known cycle yet
        at = rel;
    }
}

void
MshrTable::release(int entry, uint64_t release_at)
{
    panicIf(entry < 0 ||
                entry >= static_cast<int>(entries.size()),
            "MSHR release out of range");
    Entry &e = entries[static_cast<size_t>(entry)];
    panicIf(!e.used, "MSHR release of an unclaimed entry");
    if (e.releaseAt == kPendingRelease)
        e.releaseAt = release_at;
    else
        e.releaseAt = std::max(e.releaseAt, release_at);
}

// --- DramChannel ------------------------------------------------------

DramChannel::DramChannel(const DramConfig &dram, int dram_latency,
                         double cycles_per_sector)
    : cfg(dram), dramLatency(dram_latency),
      cyclesPerSector(cycles_per_sector),
      banks(static_cast<size_t>(dram.numBanks))
{
}

int
DramChannel::bankOf(uint64_t addr) const
{
    return static_cast<int>(
        (addr / static_cast<uint64_t>(cfg.rowBytes)) &
        static_cast<uint64_t>(cfg.numBanks - 1));
}

uint64_t
DramChannel::rowOf(uint64_t addr) const
{
    return addr / static_cast<uint64_t>(cfg.rowBytes) /
           static_cast<uint64_t>(cfg.numBanks);
}

void
DramChannel::beginCycle()
{
    // Tickets live for one cycle: everything admitted after this is
    // serviced and redeemed before the next beginCycle().
    panicIf(!queue.empty(), "DRAM queue not drained last cycle");
    results.clear();
}

bool
DramChannel::canAccept(uint64_t) const
{
    return static_cast<int>(queue.size()) < cfg.schedQueueSize;
}

int
DramChannel::request(uint64_t addr, uint64_t at)
{
    if (!canAccept(at))
        return -1;
    const int ticket = static_cast<int>(results.size());
    queue.push_back({addr, at, ticket});
    results.push_back({});
    peak = std::max(peak, static_cast<uint64_t>(queue.size()));
    return ticket;
}

void
DramChannel::serve(const Request &r)
{
    Bank &b = banks[static_cast<size_t>(bankOf(r.addr))];
    const uint64_t row = rowOf(r.addr);

    // The shared data bus carries the slice's bandwidth share; the
    // bank must also have finished its previous column command.
    const double bus_at =
        std::max(static_cast<double>(r.at), busNextFree);
    const uint64_t cmd =
        std::max(static_cast<uint64_t>(bus_at), b.readyAt);

    bool row_hit = false;
    uint64_t issue;
    if (b.open && b.openRow == row) {
        row_hit = true;
        issue = cmd; // open-row hit: straight to the column command
    } else if (!b.open) {
        // Closed bank: activate, then the column command after tRCD.
        b.activateAt = cmd;
        issue = cmd + static_cast<uint64_t>(cfg.tRcd);
    } else {
        // Row conflict: precharge (respecting tRAS since the last
        // activate), re-activate, then the column command.
        const uint64_t pre = std::max(
            cmd, b.activateAt + static_cast<uint64_t>(cfg.tRas));
        b.activateAt = pre + static_cast<uint64_t>(cfg.tRp);
        issue = b.activateAt + static_cast<uint64_t>(cfg.tRcd);
    }
    b.open = true;
    b.openRow = row;
    b.readyAt = issue + static_cast<uint64_t>(cfg.tCcd);

    busNextFree = std::max(busNextFree,
                           static_cast<double>(issue)) +
                  cyclesPerSector;
    busy += cyclesPerSector;

    results[static_cast<size_t>(r.ticket)] = {
        issue + static_cast<uint64_t>(dramLatency), row_hit};
}

void
DramChannel::service()
{
    while (!queue.empty()) {
        size_t pick = 0;
        if (cfg.scheduler == DramSchedPolicy::Frfcfs) {
            // First-ready: the oldest request whose bank still has
            // its row open; else strictly the oldest. Queue order is
            // admission order, which MemorySystem fixes to
            // (SM index, sector index) — deterministic.
            for (size_t i = 0; i < queue.size(); ++i) {
                const Bank &b =
                    banks[static_cast<size_t>(bankOf(queue[i].addr))];
                if (b.open && b.openRow == rowOf(queue[i].addr)) {
                    pick = i;
                    break;
                }
            }
        }
        const Request r = queue[pick];
        queue.erase(queue.begin() +
                    static_cast<ptrdiff_t>(pick));
        serve(r);
    }
}

uint64_t
DramChannel::readyOf(int ticket) const
{
    panicIf(ticket < 0 ||
                ticket >= static_cast<int>(results.size()),
            "DRAM ticket out of range");
    return results[static_cast<size_t>(ticket)].ready;
}

bool
DramChannel::rowHitOf(int ticket) const
{
    panicIf(ticket < 0 ||
                ticket >= static_cast<int>(results.size()),
            "DRAM ticket out of range");
    return results[static_cast<size_t>(ticket)].rowHit;
}

void
DramChannel::reset()
{
    for (Bank &b : banks)
        b = Bank{};
    queue.clear();
    results.clear();
    busNextFree = 0.0;
    busy = 0.0;
    peak = 0;
}

// --- CacheLevel -------------------------------------------------------

CacheLevel::CacheLevel(const CacheGeometry &geometry,
                       const MshrConfig &mshr_cfg, int hit_latency)
    : store(geometry), hitLatency(hit_latency)
{
    table.configure(mshr_cfg);
}

CacheLevel::Outcome
CacheLevel::serviceSector(uint64_t addr, uint64_t issue_at)
{
    Outcome out;
    const CacheProbe p = store.probe(addr, issue_at);
    if (p.hit) {
        out.kind = Outcome::Kind::Hit;
        out.ready = std::max(
            issue_at + static_cast<uint64_t>(hitLatency), p.ready);
        return out;
    }

    panicIf(!next_, "cache-level miss with no next level chained");
    if (!next_->canAccept(issue_at))
        return out; // Rejected: bounded queue full, retry next cycle

    const uint64_t line =
        addr / static_cast<uint64_t>(store.geometry().lineBytes);
    uint64_t at = issue_at;
    const int entry = table.acquire(line, at);
    if (entry < 0)
        return out; // Rejected: every MSHR busy, release unknown

    const int ticket = next_->request(addr, at);
    panicIf(ticket < 0, "next level refused after canAccept");
    out.kind = Outcome::Kind::Forwarded;
    out.ticket = ticket;
    out.mshrEntry = entry;
    return out;
}

void
CacheLevel::completeFill(uint64_t addr, uint64_t issue_at,
                         uint64_t ready, int mshr_entry)
{
    store.fill(addr, issue_at, ready);
    if (mshr_entry >= 0)
        table.release(mshr_entry, ready);
}

void
CacheLevel::reset()
{
    store.flush();
    table.reset();
}

} // namespace gsuite
