/**
 * @file
 * Per-launch statistics: everything the paper reads from GPGPU-Sim.
 */

#ifndef GSUITE_SIMGPU_KERNELSTATS_HPP
#define GSUITE_SIMGPU_KERNELSTATS_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "simgpu/Isa.hpp"
#include "simgpu/KernelLaunch.hpp"
#include "util/Stats.hpp"

namespace gsuite {

/**
 * Per-warp, per-cycle issue states — the categories of Fig. 6.
 * "Issued" means the warp issued an instruction that cycle; the rest
 * explain why an active warp could not issue.
 */
enum class StallReason : int {
    Issued = 0,
    MemoryDependency,
    ExecutionDependency,
    InstructionFetch,
    Synchronization,
    MshrFull, ///< L1 MSHR table full: LSU back-pressure
    NotSelected,
};
constexpr int kNumStallReasons = 7;

/** Paper-facing label for a stall reason (Fig. 6 legend). */
const char *stallReasonName(StallReason r);

/**
 * Per-scheduler-slot, per-cycle occupancy buckets — Fig. 7. Stall:
 * a ready warp existed but the pipeline could not accept it. Idle:
 * warps were resident but none ready. W8/W20/W32: an instruction
 * issued with <=8, <=20, <=32 active threads.
 */
enum class OccBucket : int {
    Stall = 0,
    Idle,
    W8,
    W20,
    W32,
};
constexpr int kNumOccBuckets = 5;

/** Paper-facing label for an occupancy bucket (Fig. 7 legend). */
const char *occBucketName(OccBucket b);

/**
 * One sampled warp-scheduler snapshot of the trace sampling core
 * (hwdb `trace.sampling_core`): that SM's *cumulative* stall and
 * occupancy counters as of `cycle`. Collected read-only by the
 * simulator's control phase at a fixed stepped-cycle interval when
 * SM tracing is enabled, so sampling can never perturb a
 * deterministic counter; rides along in KernelStats but is excluded
 * from merge() and from every golden/stat rendering.
 */
struct SmSchedSample {
    uint64_t cycle = 0;
    std::array<uint64_t, kNumStallReasons> stallCycles{};
    std::array<uint64_t, kNumOccBuckets> occCycles{};
};

/**
 * One extrapolated counter of a CTA-sampled run: the estimated
 * full-population total and an absolute error bound (both in the
 * counter's own unit). Produced by extrapolateCtaSample(); the bound
 * is 3x the stratified standard error plus a small floor, so full-run
 * values land inside [est - err, est + err] with high probability.
 */
struct SampleEstimate {
    std::string name; ///< toStatSet() counter name, e.g. "cycles"
    double est = 0.0;
    double err = 0.0;
};

/** All statistics collected for one kernel launch. */
struct KernelStats {
    std::string name;
    KernelClass kind = KernelClass::Aux;

    // --- timing ---------------------------------------------------------
    uint64_t cycles = 0;
    int64_t ctasTotal = 0;    ///< CTAs in the launch (full GPU)
    /**
     * CTAs the simulated SM subset should process to mirror the full
     * GPU's per-SM load: ceil(ctasTotal / smSampleFactor).
     */
    int64_t ctasExpected = 0;
    int64_t ctasSimulated = 0; ///< CTAs actually simulated (<= cap)
    int64_t warpsSimulated = 0;

    // --- instruction mix (warp-level dynamic counts) ---------------------
    std::array<uint64_t, kNumInstrClasses> instrByClass{};
    uint64_t warpInstrs = 0;
    uint64_t threadInstrs = 0;

    // --- issue-stall attribution (warp-cycles) ---------------------------
    std::array<uint64_t, kNumStallReasons> stallCycles{};

    // --- scheduler occupancy (scheduler-cycles) ---------------------------
    std::array<uint64_t, kNumOccBuckets> occCycles{};

    // --- memory system -----------------------------------------------------
    uint64_t l1Hits = 0;
    uint64_t l1Misses = 0;
    uint64_t l2Hits = 0;
    uint64_t l2Misses = 0;
    uint64_t memInstrs = 0;
    uint64_t memSectors = 0;
    uint64_t dramBytes = 0;
    uint64_t dramBusyCycles = 0;
    uint64_t dramRowHits = 0;   ///< DRAM reads hitting an open row
    uint64_t dramRowMisses = 0; ///< activates (closed bank/conflict)
    /**
     * High-water mark of any slice's DRAM scheduler queue (max-merged
     * across launches, filled once per run by the simulator).
     */
    uint64_t dramQueuePeak = 0;

    // --- pipe utilization --------------------------------------------------
    uint64_t aluBusyCycles = 0;   ///< scheduler ALU port busy cycles
    uint64_t schedulerSlots = 0;  ///< cycles * schedulers * SMs

    // --- issue-loop diagnostics --------------------------------------------
    /**
     * Warp classifications actually computed. The SoA fast path only
     * re-classifies a warp when its cached classification can change,
     * so this is far below warps x cycles; the reference issue path
     * (GpuConfig::referenceIssue) recomputes every resident warp
     * every stepped cycle. Deterministic for a fixed issue path, but
     * intentionally different between the two paths — exclude it when
     * comparing fast-vs-reference runs.
     */
    uint64_t classifyEvals = 0;

    /**
     * Cycles this SM fast-forwarded through accountExtra (per-SM
     * idle replay plus the simulator's global stall skip), each
     * attributed to the stall classes of the last computed
     * classification. Identical between issue paths.
     */
    uint64_t fastForwardCycles = 0;

    // --- simulator footprint -----------------------------------------------
    /**
     * High-water mark of resident decoded-trace bytes (sum over SMs
     * of each SM's peak). Streaming trace generation caps this at
     * O(resident warps x chunk size) regardless of kernel size.
     */
    uint64_t traceBytesPeak = 0;

    /**
     * Device-allocator high-water mark (bytes mapped) as of this
     * kernel's launch construction: the per-node naive placement
     * peak. Filled by the engines, not the simulator.
     */
    uint64_t deviceBytesPeak = 0;

    // --- trace sampling ------------------------------------------------------
    /**
     * Warp-scheduler samples of the trace sampling core; empty
     * unless SM tracing is enabled (hwdb `trace.enabled` +
     * `trace.components` containing "sm"). Deterministic across
     * sim-thread counts (sampled in the control phase), untouched by
     * merge(), absent from goldens.
     */
    std::vector<SmSchedSample> smSamples;

    // --- CTA-sampled extrapolation -------------------------------------------
    /**
     * CTAs cycle-simulated under sample.mode=cta; 0 when sampling was
     * off or did not engage (small launch). When positive, the raw
     * counters above cover only the sampled CTAs and `estimates`
     * carries the extrapolated full-population totals.
     */
    int64_t sampledCtas = 0;
    int sampleStrata = 0; ///< strata the sample was drawn from

    /**
     * Extrapolated counters (est_* / err_* in toStatSet()). Empty
     * unless sampling engaged. merge() combines them with the other
     * side's estimates — or its exact raw counters when that side was
     * unsampled — so aggregates stay comparable to full runs.
     */
    std::vector<SampleEstimate> estimates;

    /** Estimated value for a toStatSet() name; raw value if absent. */
    double estimate(const std::string &stat) const;
    /** Error bound for a toStatSet() name; 0 if absent. */
    double estimateErr(const std::string &stat) const;

    // --- derived metrics ----------------------------------------------------
    double l1HitRate() const;
    double l2HitRate() const;
    /** Share (0..1) of warp-cycles in the given state. */
    double stallShare(StallReason r) const;
    /** Share (0..1) of scheduler-cycles in the given bucket. */
    double occShare(OccBucket b) const;
    /** Share (0..1) of dynamic warp instructions of the given class. */
    double instrShare(InstrClass c) const;
    /** Fraction of scheduler slots doing ALU work (Fig. 9 compute). */
    double computeUtilization() const;
    /** Fraction of DRAM bandwidth consumed (Fig. 9 memory). */
    double memoryUtilization() const;
    /** Average sectors per global memory instruction (divergence). */
    double divergence() const;
    /** Wall-clock estimate at the configured core clock, in ms. */
    double timeMs(double clock_ghz) const;
    /** If CTAs were sampled, the launch/simulated ratio (else 1). */
    double samplingFactor() const;

    /** Merge another launch's counters into this one. */
    void merge(const KernelStats &other);

    /** Export every metric as named stats for generic reporting. */
    StatSet toStatSet() const;
};

} // namespace gsuite

#endif // GSUITE_SIMGPU_KERNELSTATS_HPP
