#include "simgpu/DeviceAllocator.hpp"

#include <algorithm>

#include "util/Logging.hpp"

namespace gsuite {

uint64_t
DeviceAllocator::map(const void *host_ptr, uint64_t bytes)
{
    auto it = mappings.find(host_ptr);
    if (it != mappings.end())
        return it->second;
    panicIf(frozen,
            "map() of an undeclared span on a frozen allocator — a "
            "kernel's ioSpans() does not cover its makeLaunch()");
    const uint64_t addr = cursor;
    const uint64_t padded = (bytes + kAlign - 1) / kAlign * kAlign;
    cursor += padded == 0 ? kAlign : padded;
    peak = std::max(peak, cursor - kBase);
    mappings.emplace(host_ptr, addr);
    return addr;
}

uint64_t
DeviceAllocator::addressOf(const void *host_ptr) const
{
    auto it = mappings.find(host_ptr);
    panicIf(it == mappings.end(),
            "addressOf() on a buffer that was never mapped");
    return it->second;
}

bool
DeviceAllocator::isMapped(const void *host_ptr) const
{
    return mappings.find(host_ptr) != mappings.end();
}

void
DeviceAllocator::reset()
{
    cursor = kBase;
    peak = 0;
    frozen = false;
    mappings.clear();
}

} // namespace gsuite
