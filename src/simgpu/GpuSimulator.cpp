#include "simgpu/GpuSimulator.hpp"

#include <algorithm>
#include <cinttypes>

#include "simgpu/CtaSampler.hpp"
#include "util/Logging.hpp"
#include "util/RunError.hpp"

namespace gsuite {

namespace {

/** Validate before any member (MemorySystem divides by slice count). */
GpuConfig
validated(GpuConfig cfg)
{
    cfg.validate();
    return cfg;
}

} // namespace

GpuSimulator::GpuSimulator(GpuConfig config)
    : cfg(validated(std::move(config))), mem(cfg)
{
    sms.reserve(static_cast<size_t>(cfg.numSms));
    for (int i = 0; i < cfg.numSms; ++i)
        sms.push_back(std::make_unique<Sm>(cfg, i, mem));
    smStats.resize(static_cast<size_t>(cfg.numSms));
}

int
GpuSimulator::resolveThreads(const SimOptions &opts) const
{
    int threads = opts.numThreads > 0 ? opts.numThreads
                                      : ThreadPool::defaultLanes();
    return std::clamp(threads, 1, cfg.numSms);
}

void
GpuSimulator::stepRange(int begin, int end, RunControl &ctl,
                        int worker)
{
    bool issued = false;
    uint64_t next_event = ~uint64_t{0};
    for (int i = begin; i < end; ++i)
        issued =
            sms[static_cast<size_t>(i)]->stepCycle(ctl.cycle,
                                                   next_event) ||
            issued;
    ctl.issuedBy[static_cast<size_t>(worker)] = issued ? 1 : 0;
    ctl.eventBy[static_cast<size_t>(worker)] = next_event;
}

void
GpuSimulator::controlPhase(RunControl &ctl)
{
    constexpr uint64_t kNoEvent = ~uint64_t{0};

    bool issued = false;
    uint64_t next_event = kNoEvent;
    for (size_t w = 0; w < ctl.issuedBy.size(); ++w) {
        issued = issued || ctl.issuedBy[w] != 0;
        next_event = std::min(next_event, ctl.eventBy[w]);
    }

    // The watchdog ceiling stops the clock exactly like cycleLimit
    // (so fast-forwarding cannot overshoot it), but is reported as an
    // error instead of a truncation.
    const uint64_t hard_stop =
        ctl.cycleCeiling
            ? std::min(ctl.cycleLimit, ctl.cycleCeiling)
            : ctl.cycleLimit;

    // Advance first, then re-assign and re-check: the reported cycle
    // count includes the cycle in which the last instruction issued
    // (matching the original serial loop, which broke at the top of
    // the iteration after the final issue).
    if (issued || next_event <= ctl.cycle + 1 ||
        next_event == kNoEvent) {
        ctl.cycle += 1;
    } else {
        // Fast-forward: nothing can issue until next_event, so
        // repeat each SM's current classification for the gap.
        const uint64_t target = std::min(next_event, hard_stop);
        const uint64_t delta = target - ctl.cycle - 1;
        if (delta > 0) {
            for (auto &sm : sms)
                sm->accountExtra(delta);
        }
        ctl.cycle = target;
    }

    // Trace sampling: snapshot the sampling core's cumulative
    // scheduler counters at the first stepped cycle at or past each
    // interval boundary. Runs on worker 0 after the resolve barrier
    // (every stepCycle write ordered before), reads only — every
    // deterministic counter is invariant to sampling.
    if (ctl.sampleEnabled && ctl.cycle >= ctl.nextSampleCycle) {
        ctl.samples.push_back(
            sms[static_cast<size_t>(ctl.sampleCore)]
                ->sampleSchedState(ctl.cycle));
        ctl.nextSampleCycle =
            (ctl.cycle / ctl.sampleInterval + 1) *
            ctl.sampleInterval;
    }

    if (ctl.cycle >= hard_stop) {
        ctl.done = true;
        if (ctl.cycleCeiling && ctl.cycle >= ctl.cycleCeiling)
            ctl.hitCeiling = true;
        else
            ctl.hitLimit = true;
        return;
    }

    if (ctl.cancel &&
        ctl.cancel->load(std::memory_order_relaxed)) {
        ctl.done = true;
        ctl.cancelled = true;
        return;
    }

    // Assign pending CTAs to SMs with free slots (round-robin by
    // free-slot discovery order). Sampled runs walk the plan's CTA
    // order instead of the dense prefix.
    for (auto &sm : sms) {
        while (ctl.nextCta < ctl.ctasToSim && sm->hasFreeCtaSlot()) {
            const int64_t id =
                ctl.sampleOrder
                    ? (*ctl.sampleOrder)[static_cast<size_t>(
                          ctl.nextCta)]
                    : ctl.nextCta;
            ++ctl.nextCta;
            sm->assignCta(id, ctl.cycle);
        }
    }

    bool busy = ctl.nextCta < ctl.ctasToSim;
    for (auto &sm : sms)
        busy = busy || sm->busy();
    if (!busy)
        ctl.done = true;
}

KernelStats
GpuSimulator::run(const KernelLaunch &launch, const SimOptions &opts)
{
    panicIf(!launch.hasTraceGen(),
            "KernelLaunch without a trace generator");
    panicIf(launch.dims.numCtas <= 0 || launch.dims.threadsPerCta <= 0,
            "KernelLaunch with empty grid");

    const int threads = resolveThreads(opts);
    const size_t chunk_instrs = static_cast<size_t>(
        std::max(32, opts.traceChunkInstrs));

    // SM-subset sampling: the simulated numSms SMs stand for a GPU
    // with numSms * smSampleFactor SMs, so each should process a
    // 1/smSampleFactor share of the grid — this preserves per-SM
    // occupancy (small launches underfill the machine exactly as
    // they would the real one). The maxCtas cap bounds runtime for
    // huge grids on top of that.
    const int64_t expected =
        (launch.dims.numCtas +
         static_cast<int64_t>(cfg.smSampleFactor) - 1) /
        static_cast<int64_t>(cfg.smSampleFactor);

    // CTA sampling (sample.mode=cta): cycle-simulate a deterministic
    // stratified sample of that per-SM share and extrapolate. When
    // the plan does not engage (off, or the launch is small) the run
    // below is byte-identical to the pre-sampling simulator.
    CtaSamplePlan plan;
    if (cfg.sampleMode == CtaSampleMode::Cta)
        plan = buildCtaSamplePlan(cfg, launch, expected, opts.maxCtas);
    std::vector<std::vector<CtaSampleRecord>> sm_records;
    if (plan.engaged)
        sm_records.resize(sms.size());

    mem.reset();
    for (auto &st : smStats)
        st = KernelStats{};
    for (size_t i = 0; i < sms.size(); ++i)
        sms[i]->beginLaunch(&launch, &smStats[i], chunk_instrs,
                            opts.perSmFastForward,
                            plan.engaged ? &sm_records[i] : nullptr);

    RunControl ctl;
    ctl.ctasToSim = plan.engaged
                        ? static_cast<int64_t>(plan.order.size())
                        : std::min(expected, opts.maxCtas);
    ctl.sampleOrder = plan.engaged ? &plan.order : nullptr;
    ctl.cycleLimit = opts.cycleLimit;
    ctl.cycleCeiling = opts.cycleCeiling;
    ctl.cancel = opts.cancel;
    ctl.issuedBy.assign(static_cast<size_t>(threads), 0);
    ctl.eventBy.assign(static_cast<size_t>(threads), ~uint64_t{0});
    if (opts.smSampleEnabled) {
        ctl.sampleEnabled = true;
        ctl.sampleCore = std::clamp(opts.smSampleCore, 0,
                                    cfg.numSms - 1);
        ctl.sampleInterval =
            std::max<uint64_t>(1, opts.smSampleIntervalCycles);
        ctl.nextSampleCycle = ctl.sampleInterval;
    }

    // Initial CTA wave at cycle 0.
    for (auto &sm : sms) {
        while (ctl.nextCta < ctl.ctasToSim && sm->hasFreeCtaSlot()) {
            const int64_t id =
                ctl.sampleOrder
                    ? (*ctl.sampleOrder)[static_cast<size_t>(
                          ctl.nextCta)]
                    : ctl.nextCta;
            ++ctl.nextCta;
            sm->assignCta(id, 0);
        }
    }

    const int num_sms = cfg.numSms;
    const int num_slices = mem.numSlices();
    auto sm_begin = [&](int w) { return num_sms * w / threads; };
    auto slice_begin = [&](int w) {
        return num_slices * w / threads;
    };

    if (threads == 1) {
        while (!ctl.done) {
            stepRange(0, num_sms, ctl, 0);
            for (int s = 0; s < num_slices; ++s)
                mem.resolveSlice(s);
            controlPhase(ctl);
        }
    } else {
        if (!pool || pool->lanes() != threads)
            pool = std::make_unique<ThreadPool>(threads);
        SpinBarrier barrier(threads);
        pool->runOnAll([&](int worker) {
            for (;;) {
                barrier.arriveAndWait(); // control published
                if (ctl.done)
                    return;
                stepRange(sm_begin(worker), sm_begin(worker + 1),
                          ctl, worker);
                barrier.arriveAndWait(); // all SMs stepped
                for (int s = slice_begin(worker);
                     s < slice_begin(worker + 1); ++s)
                    mem.resolveSlice(s);
                barrier.arriveAndWait(); // memory resolved
                if (worker == 0)
                    controlPhase(ctl);
            }
        });
    }

    // Throw only here — every worker has left the barrier loop, so
    // no thread is waiting on a phase that will never be published.
    if (ctl.cancelled)
        throw RunException(
            RunError::Timeout,
            "kernel '" + launch.name +
                "' cancelled by watchdog at cycle " +
                std::to_string(ctl.cycle));
    if (ctl.hitCeiling)
        throw RunException(
            RunError::Timeout,
            "kernel '" + launch.name + "' exceeded the " +
                std::to_string(ctl.cycleCeiling) +
                "-cycle watchdog ceiling");

    // A truncated run (cycle limit) can stop the clock while a parked
    // access is still back-pressured mid-resolution; give the slices
    // as many further service rounds as they need first, so the drain
    // below only ever folds complete results.
    uint64_t drain_rounds = 0;
    while (mem.anyParkedIncomplete()) {
        for (int s = 0; s < num_slices; ++s)
            mem.resolveSlice(s);
        panicIf(++drain_rounds > 1000000,
                "parked memory accesses failed to drain (livelock?)");
    }
    // Flush any still-parked memory access so its counters land.
    for (auto &sm : sms)
        sm->drainParkedMem();

    // Closing sample so the trace covers the tail of the run (after
    // the parked-memory drain, whose counters belong to the launch).
    if (ctl.sampleEnabled &&
        (ctl.samples.empty() ||
         ctl.samples.back().cycle < ctl.cycle))
        ctl.samples.push_back(
            sms[static_cast<size_t>(ctl.sampleCore)]
                ->sampleSchedState(ctl.cycle));

    // Deterministic reduction: per-SM stats merge in SM-index order,
    // then the launch-global fields overwrite the zero-initialized
    // slots the per-SM stats never touch.
    KernelStats stats;
    for (const auto &st : smStats)
        stats.merge(st);
    // SMs hold their chunks concurrently: the launch footprint is the
    // sum of per-SM peaks (merge() combines peaks as max, which is
    // right across launches but not across SMs of one launch).
    stats.traceBytesPeak = 0;
    for (const auto &st : smStats)
        stats.traceBytesPeak += st.traceBytesPeak;
    stats.name = launch.name;
    stats.kind = launch.kind;
    stats.ctasTotal = launch.dims.numCtas;
    stats.ctasExpected = expected;
    stats.ctasSimulated = ctl.ctasToSim;
    stats.cycles = ctl.cycle;
    stats.dramBusyCycles =
        static_cast<uint64_t>(mem.dramBusyCycles());
    stats.dramQueuePeak = mem.dramQueuePeak();
    stats.smSamples = std::move(ctl.samples);

    if (plan.engaged) {
        // Gather per-SM completion records into the canonical order
        // (each CTA completes on exactly one SM, so sorting by CTA id
        // is thread-count independent), then extrapolate.
        std::vector<CtaSampleRecord> records;
        for (const auto &v : sm_records)
            records.insert(records.end(), v.begin(), v.end());
        std::sort(records.begin(), records.end(),
                  [](const CtaSampleRecord &a,
                     const CtaSampleRecord &b) {
                      return a.ctaId < b.ctaId;
                  });
        extrapolateCtaSample(plan, records, stats);
    }

    if (ctl.hitLimit) {
        warn("kernel '%s' hit the %" PRIu64
             "-cycle simulation limit after %" PRIu64
             " of %" PRIu64 " CTAs (expected %" PRIu64 ")",
             launch.name.c_str(), opts.cycleLimit,
             static_cast<uint64_t>(ctl.nextCta),
             static_cast<uint64_t>(ctl.ctasToSim),
             static_cast<uint64_t>(expected));
    }
    return stats;
}

} // namespace gsuite
