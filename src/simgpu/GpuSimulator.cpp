#include "simgpu/GpuSimulator.hpp"

#include <algorithm>

#include "util/Logging.hpp"

namespace gsuite {

GpuSimulator::GpuSimulator(GpuConfig config)
    : cfg(std::move(config)), mem(cfg)
{
    cfg.validate();
    sms.reserve(static_cast<size_t>(cfg.numSms));
    for (int i = 0; i < cfg.numSms; ++i)
        sms.push_back(std::make_unique<Sm>(cfg, i, mem));
}

KernelStats
GpuSimulator::run(const KernelLaunch &launch, const SimOptions &opts)
{
    panicIf(!launch.genTrace, "KernelLaunch without a trace generator");
    panicIf(launch.dims.numCtas <= 0 || launch.dims.threadsPerCta <= 0,
            "KernelLaunch with empty grid");

    KernelStats stats;
    stats.name = launch.name;
    stats.kind = launch.kind;
    stats.ctasTotal = launch.dims.numCtas;

    mem.reset();
    for (auto &sm : sms)
        sm->beginLaunch(&launch, &stats);

    // SM-subset sampling: the simulated numSms SMs stand for a GPU
    // with numSms * smSampleFactor SMs, so each should process a
    // 1/smSampleFactor share of the grid — this preserves per-SM
    // occupancy (small launches underfill the machine exactly as
    // they would the real one). The maxCtas cap bounds runtime for
    // huge grids on top of that.
    const int64_t expected =
        (launch.dims.numCtas +
         static_cast<int64_t>(cfg.smSampleFactor) - 1) /
        static_cast<int64_t>(cfg.smSampleFactor);
    const int64_t ctas_to_sim = std::min(expected, opts.maxCtas);
    stats.ctasExpected = expected;
    stats.ctasSimulated = ctas_to_sim;

    int64_t next_cta = 0;
    uint64_t cycle = 0;
    while (cycle < opts.cycleLimit) {
        // Assign pending CTAs to SMs with free slots (round-robin by
        // free-slot discovery order).
        for (auto &sm : sms) {
            while (next_cta < ctas_to_sim && sm->hasFreeCtaSlot())
                sm->assignCta(next_cta++, cycle);
        }

        bool busy = next_cta < ctas_to_sim;
        for (auto &sm : sms)
            busy = busy || sm->busy();
        if (!busy)
            break;

        bool issued = false;
        uint64_t next_event = ~uint64_t{0};
        for (auto &sm : sms)
            issued = sm->stepCycle(cycle, next_event) || issued;

        if (issued || next_event <= cycle + 1 ||
            next_event == ~uint64_t{0}) {
            cycle += 1;
        } else {
            // Fast-forward: nothing can issue until next_event, so
            // repeat each SM's current classification for the gap.
            const uint64_t target =
                std::min(next_event, opts.cycleLimit);
            const uint64_t delta = target - cycle - 1;
            if (delta > 0) {
                for (auto &sm : sms)
                    sm->accountExtra(delta);
            }
            cycle = target;
        }
    }

    if (cycle >= opts.cycleLimit)
        warn("kernel '%s' hit the %llu-cycle simulation limit",
             launch.name.c_str(),
             static_cast<unsigned long long>(opts.cycleLimit));

    stats.cycles = cycle;
    return stats;
}

} // namespace gsuite
