/**
 * @file
 * Kernel launch descriptor: grid geometry plus a lazy per-warp trace
 * generator.
 *
 * Traces materialize only when a warp becomes resident on an SM, so
 * the simulator's footprint is O(resident warps) rather than
 * O(total dynamic instructions).
 */

#ifndef GSUITE_SIMGPU_KERNELLAUNCH_HPP
#define GSUITE_SIMGPU_KERNELLAUNCH_HPP

#include <cstdint>
#include <functional>
#include <string>

#include "simgpu/Trace.hpp"

namespace gsuite {

/**
 * Core kernel identities of Table II (plus the auxiliary elementwise
 * ops the pipelines need, reported as "other" in Fig. 4).
 */
enum class KernelClass {
    IndexSelect,
    Scatter,
    Sgemm,
    SpGemm,
    SpMM,
    Elementwise,
    Aux,
};

/** Short-form label used in the paper's figures (is/sc/sg/sp). */
const char *kernelClassShortForm(KernelClass k);

/** Long name of the kernel class. */
const char *kernelClassName(KernelClass k);

/** CUDA-style launch geometry. */
struct LaunchDims {
    int64_t numCtas = 0;
    int threadsPerCta = 0;

    int
    warpsPerCta() const
    {
        return (threadsPerCta + 31) / 32;
    }
    int64_t totalWarps() const { return numCtas * warpsPerCta(); }
    int64_t
    totalThreads() const
    {
        return numCtas * static_cast<int64_t>(threadsPerCta);
    }
};

/**
 * A recorded kernel launch. genTrace fills @p out with the dynamic
 * instruction stream of warp @p warp of CTA @p cta; it must end the
 * stream with an EXIT instruction.
 */
struct KernelLaunch {
    std::string name;
    KernelClass kind = KernelClass::Aux;
    LaunchDims dims;
    std::function<void(int64_t cta, int warp, WarpTrace &out)> genTrace;

    /** Estimated FLOPs (for reports only). */
    uint64_t flopEstimate = 0;
    /** Estimated bytes touched (for reports only). */
    uint64_t bytesEstimate = 0;
};

} // namespace gsuite

#endif // GSUITE_SIMGPU_KERNELLAUNCH_HPP
