/**
 * @file
 * Kernel launch descriptor: grid geometry plus a streaming per-warp
 * trace generator.
 *
 * Traces materialize chunk by chunk while a warp is resident on an
 * SM, so the simulator's footprint is O(resident warps x chunk size)
 * rather than O(total dynamic instructions). Kernels provide a
 * resumable WarpTraceStream (preferred); an eager whole-trace
 * generator is still accepted for tests and simple synthetic
 * launches, and is adapted into a single-chunk stream internally.
 */

#ifndef GSUITE_SIMGPU_KERNELLAUNCH_HPP
#define GSUITE_SIMGPU_KERNELLAUNCH_HPP

#include <cstdint>
#include <functional>
#include <string>

#include "simgpu/Trace.hpp"

namespace gsuite {

/**
 * Core kernel identities of Table II (plus the auxiliary elementwise
 * ops the pipelines need, reported as "other" in Fig. 4).
 */
enum class KernelClass {
    IndexSelect,
    Scatter,
    Sgemm,
    SpGemm,
    SpMM,
    Elementwise,
    Aux,
};

/** Short-form label used in the paper's figures (is/sc/sg/sp). */
const char *kernelClassShortForm(KernelClass k);

/** Long name of the kernel class. */
const char *kernelClassName(KernelClass k);

/** CUDA-style launch geometry. */
struct LaunchDims {
    int64_t numCtas = 0;
    int threadsPerCta = 0;

    int
    warpsPerCta() const
    {
        return (threadsPerCta + 31) / 32;
    }
    int64_t totalWarps() const { return numCtas * warpsPerCta(); }
    int64_t
    totalThreads() const
    {
        return numCtas * static_cast<int64_t>(threadsPerCta);
    }
};

/**
 * Resumable per-warp trace stream.
 *
 * Each call appends a further chunk of the warp's dynamic instruction
 * stream through the (budgeted) builder and returns true once the
 * stream is complete. Contract for generators:
 *  - every call must emit at least one instruction;
 *  - the final call must end the stream with an EXIT instruction, and
 *    EXIT must not appear earlier;
 *  - generators should stop emitting once builder.full() turns true
 *    (checked between logical instruction groups; a group may
 *    overshoot the budget slightly);
 *  - register ids obtained from the builder remain valid across
 *    chunks (the rotation cursor is persisted by the simulator).
 */
using WarpTraceStream = std::function<bool(TraceBuilder &)>;

/**
 * A recorded kernel launch. streamTrace returns the resumable trace
 * stream of warp @p warp of CTA @p cta; genTrace is the legacy eager
 * form that fills a whole trace at once. Exactly one should be set
 * (streamTrace wins when both are).
 */
struct KernelLaunch {
    std::string name;
    KernelClass kind = KernelClass::Aux;
    LaunchDims dims;

    /** Streaming trace generator (preferred; bounded memory). */
    std::function<WarpTraceStream(int64_t cta, int warp)> streamTrace;

    /**
     * Eager whole-trace generator (legacy). Must end the stream with
     * an EXIT instruction. Adapted into a single-chunk stream by
     * makeStream(), so it costs O(full trace) memory per warp.
     */
    std::function<void(int64_t cta, int warp, WarpTrace &out)> genTrace;

    /** True if either trace representation is available. */
    bool
    hasTraceGen() const
    {
        return static_cast<bool>(streamTrace) ||
               static_cast<bool>(genTrace);
    }

    /**
     * The warp's trace stream; adapts genTrace when no streaming
     * generator is set. panic()s if neither is set.
     */
    WarpTraceStream makeStream(int64_t cta, int warp) const;

    /**
     * Materialize the warp's full trace into @p out (cleared first).
     * Works for either representation; intended for tests and
     * offline analysis, not the simulation hot path.
     */
    void buildFullTrace(int64_t cta, int warp, WarpTrace &out) const;

    /**
     * Optional per-CTA cost hint (relative trace length, any unit)
     * for CTA-sampled simulation: CtaSampler stratifies the grid by
     * this ranking so heavy and light CTAs are both represented in
     * the sample. Must be cheap (called once per CTA at plan build)
     * and deterministic. Absent = uniform cost.
     */
    std::function<uint64_t(int64_t cta)> ctaCostHint;

    /** Estimated FLOPs (for reports only). */
    uint64_t flopEstimate = 0;
    /** Estimated bytes touched (for reports only). */
    uint64_t bytesEstimate = 0;
};

} // namespace gsuite

#endif // GSUITE_SIMGPU_KERNELLAUNCH_HPP
