/**
 * @file
 * The SASS-like micro-ISA the simulator executes.
 *
 * Kernel trace generators lower each CUDA-level kernel into streams of
 * these operations; the classes map onto the paper's Fig. 5 breakdown
 * (FP32 / INT / Load-Store / Control / other).
 */

#ifndef GSUITE_SIMGPU_ISA_HPP
#define GSUITE_SIMGPU_ISA_HPP

#include <cstdint>
#include <string>

namespace gsuite {

/** Dynamic operation kinds. */
enum class Op : uint8_t {
    FP32, ///< fused multiply-add / add / mul on the FP32 pipe
    INT,  ///< integer ALU (address math, predicates)
    SFU,  ///< special function (rsqrt, exp) — "other" in Fig. 5
    LDG,  ///< load from global memory
    STG,  ///< store to global memory
    ATOM, ///< global atomic reduction (scatter)
    LDS,  ///< shared-memory load (sgemm tiles)
    STS,  ///< shared-memory store
    CTRL, ///< branch / loop control
    BAR,  ///< CTA-wide barrier (__syncthreads)
    EXIT, ///< end of warp program
};

/** Fig. 5 instruction classes. */
enum class InstrClass : uint8_t {
    Fp32,
    Int,
    LoadStore,
    Control,
    Other,
};

/**
 * Map an op to its Fig. 5 class. Inline: the simulator's issue loop
 * consults this per dynamic instruction.
 */
constexpr InstrClass
instrClassOf(Op op)
{
    switch (op) {
      case Op::FP32:
        return InstrClass::Fp32;
      case Op::INT:
        return InstrClass::Int;
      case Op::LDG:
      case Op::STG:
      case Op::ATOM:
      case Op::LDS:
      case Op::STS:
        return InstrClass::LoadStore;
      case Op::CTRL:
      case Op::BAR:
      case Op::EXIT:
        return InstrClass::Control;
      case Op::SFU:
        return InstrClass::Other;
    }
    return InstrClass::Other; // unreachable for valid ops
}

/** Human-readable op name. */
const char *opName(Op op);

/** Human-readable class name matching the paper's legend. */
const char *instrClassName(InstrClass c);

/** Number of InstrClass values. */
constexpr int kNumInstrClasses = 5;

/** True for operations that access the global memory system. */
constexpr bool
isGlobalMemOp(Op op)
{
    return op == Op::LDG || op == Op::STG || op == Op::ATOM;
}

/** True for operations executed by the SM-local LSU (incl. shared). */
constexpr bool
isMemOp(Op op)
{
    return isGlobalMemOp(op) || op == Op::LDS || op == Op::STS;
}

} // namespace gsuite

#endif // GSUITE_SIMGPU_ISA_HPP
