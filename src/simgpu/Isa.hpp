/**
 * @file
 * The SASS-like micro-ISA the simulator executes.
 *
 * Kernel trace generators lower each CUDA-level kernel into streams of
 * these operations; the classes map onto the paper's Fig. 5 breakdown
 * (FP32 / INT / Load-Store / Control / other).
 */

#ifndef GSUITE_SIMGPU_ISA_HPP
#define GSUITE_SIMGPU_ISA_HPP

#include <cstdint>
#include <string>

namespace gsuite {

/** Dynamic operation kinds. */
enum class Op : uint8_t {
    FP32, ///< fused multiply-add / add / mul on the FP32 pipe
    INT,  ///< integer ALU (address math, predicates)
    SFU,  ///< special function (rsqrt, exp) — "other" in Fig. 5
    LDG,  ///< load from global memory
    STG,  ///< store to global memory
    ATOM, ///< global atomic reduction (scatter)
    LDS,  ///< shared-memory load (sgemm tiles)
    STS,  ///< shared-memory store
    CTRL, ///< branch / loop control
    BAR,  ///< CTA-wide barrier (__syncthreads)
    EXIT, ///< end of warp program
};

/** Fig. 5 instruction classes. */
enum class InstrClass : uint8_t {
    Fp32,
    Int,
    LoadStore,
    Control,
    Other,
};

/** Map an op to its Fig. 5 class. */
InstrClass instrClassOf(Op op);

/** Human-readable op name. */
const char *opName(Op op);

/** Human-readable class name matching the paper's legend. */
const char *instrClassName(InstrClass c);

/** Number of InstrClass values. */
constexpr int kNumInstrClasses = 5;

/** True for operations that access the global memory system. */
bool isGlobalMemOp(Op op);

/** True for operations executed by the SM-local LSU (incl. shared). */
bool isMemOp(Op op);

} // namespace gsuite

#endif // GSUITE_SIMGPU_ISA_HPP
