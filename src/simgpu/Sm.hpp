/**
 * @file
 * The streaming-multiprocessor timing model.
 *
 * Each SM hosts up to maxWarpsPerSm resident warps split across
 * numSchedulers warp schedulers (GTO or LRR). Every cycle, every
 * resident warp is classified into one of the Fig. 6 issue states,
 * and every scheduler slot into one of the Fig. 7 occupancy buckets.
 * Dependencies are tracked with a per-warp scoreboard of virtual
 * register ready-times; global memory goes through MemorySystem.
 *
 * Issue fast path (default): per-warp classifications are cached in
 * structure-of-arrays form (stall class, unblock cycle, expiry
 * cycle, decoded head) and only recomputed when they can change —
 * at `slotExpiry` (the earliest cycle the cached class could read
 * differently) or after an explicit state change (issue, memory
 * completion, barrier release, CTA assignment). The per-cycle work
 * is event-driven: expired classifications drain from a lazy
 * min-heap and re-derive in a batched slot-order sweep, schedulers
 * issue in O(1) from incrementally maintained per-port ready
 * lists, and the Fig. 6 stall attribution comes from incrementally
 * maintained per-class counts — no per-warp virtual-register
 * scoreboard walk per cycle (the earliest stall-clear event is
 * swept only on no-issue cycles, each of which opens a
 * fast-forward window). The pre-SoA path is kept verbatim behind
 * GpuConfig::referenceIssue; both paths produce bit-identical
 * statistics (KernelStats::classifyEvals, a diagnostic, is the
 * single intended exception), enforced by
 * tests/sim_determinism_test and tests/fuzz_test.
 *
 * Cycle skipping: when nothing issued and every warp's unblock
 * cycle is known, the SM freezes until the earliest of them
 * (idleUntil) and replays its last classification via
 * accountExtra(), attributing the skipped cycles to the same
 * Fig. 6 stall classes / Fig. 7 buckets. The simulator performs
 * the same bulk accounting across SMs when the whole GPU stalls.
 *
 * Concurrency contract: one SM is only ever touched by its owning
 * worker thread during the step phase. Global-memory instructions are
 * split across the cycle barrier — the SM begins the access during
 * its step (coalescing + its own L1), the memory slices resolve it
 * after the step barrier, and the SM folds the completion back into
 * its warp state at the start of its next step. Each SM writes its
 * statistics into its own KernelStats instance; the simulator reduces
 * them in SM-index order so totals are thread-count independent.
 *
 * Warp traces stream in fixed-budget chunks refilled on demand from
 * the launch's WarpTraceStream, bounding trace memory at
 * O(resident warps x chunk size).
 */

#ifndef GSUITE_SIMGPU_SM_HPP
#define GSUITE_SIMGPU_SM_HPP

#include <array>
#include <bitset>
#include <cstdint>
#include <vector>

#include "simgpu/CtaSampler.hpp"
#include "simgpu/GpuConfig.hpp"
#include "simgpu/KernelLaunch.hpp"
#include "simgpu/KernelStats.hpp"
#include "simgpu/MemorySystem.hpp"

namespace gsuite {

/** One streaming multiprocessor. */
class Sm
{
  public:
    Sm(const GpuConfig &cfg, int sm_id, MemorySystem &mem);

    /**
     * Prepare for a new launch.
     *
     * @param launch The launch to simulate.
     * @param stats This SM's private statistics sink.
     * @param chunk_instrs Trace-chunk instruction budget.
     * @param idle_skip Enable per-SM idle fast-forwarding.
     * @param sample_records Optional sink receiving one
     *        CtaSampleRecord per CTA completed on this SM (CTA-
     *        sampled simulation); nullptr disables the bookkeeping.
     */
    void beginLaunch(const KernelLaunch *launch, KernelStats *stats,
                     size_t chunk_instrs, bool idle_skip,
                     std::vector<CtaSampleRecord> *sample_records =
                         nullptr);

    /** True if another CTA can become resident. */
    bool hasFreeCtaSlot() const;

    /**
     * Make CTA @p cta_id resident. Cheap: warp trace streams are only
     * instantiated here; their first chunks materialize lazily during
     * the next step phase (i.e. on the owning worker).
     */
    void assignCta(int64_t cta_id, uint64_t cycle);

    /** True while any warp is resident and unfinished. */
    bool busy() const { return residentWarps > 0; }

    /**
     * Simulate one cycle: finalize last cycle's parked memory access,
     * refill exhausted trace chunks, classify all warps, let each
     * scheduler issue at most one instruction, and record statistics.
     *
     * @param cycle Current cycle.
     * @param next_event Monotonically lowered to the earliest future
     *        cycle at which this SM's state can change.
     * @return True if any instruction issued.
     */
    bool stepCycle(uint64_t cycle, uint64_t &next_event);

    /**
     * Account @p delta further cycles with the same classification as
     * the last stepCycle() (used to fast-forward long stalls).
     */
    void accountExtra(uint64_t delta);

    /**
     * Fold an unconsumed parked memory access into warp state and
     * stats (end of run, when no further step will happen).
     */
    void drainParkedMem();

    /**
     * Read-only snapshot of this SM's cumulative warp-scheduler
     * counters as of @p cycle, for trace sampling (hwdb
     * `trace.sampling_core`). Called from the control phase — the
     * phase barrier orders it after every stepCycle() write — and
     * touches no mutable state, so sampling cannot perturb any
     * deterministic counter.
     */
    SmSchedSample sampleSchedState(uint64_t cycle) const
    {
        SmSchedSample s;
        s.cycle = cycle;
        if (stats) {
            s.stallCycles = stats->stallCycles;
            s.occCycles = stats->occCycles;
        }
        return s;
    }

  private:
    /** Cold per-warp state (touched on issue / refill, not per cycle). */
    struct WarpCtx {
        bool active = false;
        bool done = false;
        bool waitingBarrier = false;
        WarpTrace chunk; ///< resident trace window (reused arena)
        WarpTraceStream stream;
        bool streamDone = false;
        uint8_t regCursor = 0;
        size_t pc = 0; ///< index into chunk
        std::array<uint64_t, kNumWarpRegs> regReady{};
        std::bitset<kNumWarpRegs> regFromMem;
        uint64_t fetchReady = 0;
        uint64_t atomicDrain = 0;
        int cta = -1;
        uint64_t ageStamp = 0;
        uint64_t chunkBytes = 0; ///< current chunk footprint
    };

    struct CtaCtx {
        bool active = false;
        int64_t ctaId = -1;
        int liveWarps = 0;
        int arrived = 0; ///< warps waiting at the barrier
        std::vector<int> warpSlots;
        // CTA-sample bookkeeping (maintained only when the launch
        // runs with a sample-record sink).
        uint64_t startCycle = 0;
        uint64_t instrs = 0;
    };

    /** Pre-issue classification of one warp (reference path scratch). */
    struct Classification {
        StallReason reason = StallReason::NotSelected;
        uint64_t event = 0; ///< cycle the blocking condition clears
    };

    const GpuConfig &cfg;
    int smId;
    MemorySystem &mem;
    const KernelLaunch *launch = nullptr;
    KernelStats *stats = nullptr;
    size_t chunkBudget = 256;
    bool idleSkip = true;
    /** Per-CTA completion sink (CTA sampling); nullptr when off. */
    std::vector<CtaSampleRecord> *sampleRecords = nullptr;

    std::vector<WarpCtx> warps;
    std::vector<CtaCtx> ctas;
    std::vector<Classification> cls; ///< reference-path scratch
    std::vector<uint64_t> aluFree;   ///< per-scheduler ALU port
    std::vector<int> greedyWarp;     ///< GTO sticky pointer
    std::vector<int> rrCursor;       ///< LRR rotation pointer
    uint64_t lsuFree = 0;
    int residentWarps = 0;
    int maxResidentCtas = 0;
    uint64_t ageCounter = 0;

    // --- SoA warp-issue state (fast path) ---------------------------
    //
    // Invariant: for every slot with slotActive[i] != 0, the cached
    // (slotReason, slotUnblock) equal what the reference classify()
    // would return this cycle, provided slotExpiry[i] > cycle. Any
    // mutation of warp state that could change the classification
    // must lower slotExpiry (markDirty) so the next sweep
    // re-derives it; reclassify() keeps the per-scheduler ready
    // lists in sync with slotReason.
    std::vector<uint8_t> slotActive;   ///< resident and not done
    std::vector<uint8_t> slotReason;   ///< cached StallReason
    std::vector<uint64_t> slotUnblock; ///< cycle the stall clears
    std::vector<uint64_t> slotExpiry;  ///< first cycle cache can drift
    std::vector<uint64_t> slotAge;     ///< ageStamp copy (GTO order)
    std::vector<uint8_t> slotIsMem;    ///< head instr needs the LSU
    std::vector<uint8_t> slotNeedsAlu; ///< head instr needs the ALU
    std::vector<uint8_t> slotLanes;    ///< head instr active lanes
    /**
     * Ready (issuable) slots per scheduler, segregated by the
     * execution port the head instruction needs (kReadyAlu /
     * kReadyMem / kReadyOther) and kept sorted by ageStamp
     * ascending. A whole busy port disqualifies its entire list, so
     * GTO's pick is an O(1) head comparison across the eligible
     * lists instead of attempting every blocked candidate; the
     * blocked lists' head ages still tell exactly which reference
     * attempts would have happened (for the structural-stall flag
     * and hazard event merges, which are idempotent per port).
     */
    std::array<std::vector<std::vector<int>>, 3> readyKind;
    static constexpr int kReadyAlu = 0;
    static constexpr int kReadyMem = 1;
    static constexpr int kReadyOther = 2;
    std::vector<int> readyPos; ///< slot -> index in its list, -1 none
    std::vector<uint8_t> slotReadyKind; ///< list a ready slot is in
    std::vector<int> residentBySched; ///< resident warps / scheduler
    /**
     * Slots that issued this cycle: cheaper than a heap round-trip
     * for the guaranteed next-cycle re-classification.
     */
    std::vector<int> issuedRecheck;

    /**
     * Lazy min-heap entry: a (cycle, slot) claim that something about
     * the slot happens at `key`. Entries are never searched or
     * removed in place — a popped/peeked entry is re-validated
     * against the authoritative SoA arrays and discarded when stale.
     */
    struct EventEntry {
        uint64_t key;
        int slot;
    };
    /** Expiry claims: pop everything <= cycle, reclassify. */
    std::vector<EventEntry> dueHeap;
    std::vector<int> dueSlots; ///< per-cycle scratch (sorted sweep)
    /** Active slots per cached stall class (incremental Fig. 6). */
    std::array<uint64_t, kNumStallReasons> stallCount{};

    /**
     * Parked memory access awaiting slice resolution: the issuing
     * warp slot (or -1) plus where the completion lands.
     */
    int parkedWarp = -1;
    Reg parkedDst = kNoReg;
    MemAccessKind parkedKind = MemAccessKind::Load;

    /**
     * Nothing on this SM can change before this cycle (no issue
     * possible, all events known): stepCycle() just replays the last
     * classification until then. Cleared by CTA assignment.
     */
    uint64_t idleUntil = 0;

    uint64_t residentTraceBytes = 0;
    uint64_t peakTraceBytes = 0;

    // Last cycle's per-state counts, for accountExtra().
    std::array<uint64_t, kNumStallReasons> lastStall{};
    std::array<uint64_t, kNumOccBuckets> lastOcc{};

    Classification classify(int slot, uint64_t cycle) const;
    void issueInstr(int slot, uint64_t cycle, int sched);
    void releaseBarrierIfComplete(CtaCtx &cta, uint64_t cycle);
    void finishWarp(int slot, uint64_t cycle);
    OccBucket bucketForLanes(int lanes) const;
    void refillChunk(WarpCtx &w);
    void finalizeParkedMem();

    // Fast-path helpers.
    void markDirty(int slot, uint64_t at_cycle);
    void readyInsert(int slot);
    void readyRemove(int slot);
    void pushDue(uint64_t key, int slot);
    void setReason(int slot, StallReason reason);
    void reclassify(int slot, uint64_t cycle);
    bool stepCycleFast(uint64_t cycle, uint64_t &next_event);
    bool stepCycleReference(uint64_t cycle, uint64_t &next_event);
};

} // namespace gsuite

#endif // GSUITE_SIMGPU_SM_HPP
