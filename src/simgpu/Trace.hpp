/**
 * @file
 * Per-warp instruction traces and the builder kernels use to emit
 * them.
 *
 * A trace is the dynamic instruction stream of one warp, with
 * per-lane global addresses attached to memory operations. Registers
 * are virtual ids used only to express producer/consumer dependencies
 * for the scoreboard.
 */

#ifndef GSUITE_SIMGPU_TRACE_HPP
#define GSUITE_SIMGPU_TRACE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "simgpu/Isa.hpp"

namespace gsuite {

/** Virtual register id; kNoReg means "no operand". */
using Reg = uint8_t;
constexpr Reg kNoReg = 0xff;
constexpr int kNumWarpRegs = 64;

/** One dynamic warp instruction. */
struct SimInstr {
    Op op = Op::EXIT;
    Reg dst = kNoReg;
    Reg srcA = kNoReg;
    Reg srcB = kNoReg;
    uint32_t activeMask = 0xffffffffu;
    uint32_t addrOffset = 0; ///< index into WarpTrace::addrs
    uint16_t addrCount = 0;  ///< lane addresses attached

    /** Number of active lanes. */
    int activeLanes() const { return __builtin_popcount(activeMask); }
};

/** The dynamic instruction stream of one warp. */
struct WarpTrace {
    std::vector<SimInstr> instrs;
    std::vector<uint64_t> addrs;

    void
    clear()
    {
        instrs.clear();
        addrs.clear();
    }

    /** Lane addresses of instruction @p i. */
    std::span<const uint64_t>
    addrsOf(const SimInstr &in) const
    {
        return {addrs.data() + in.addrOffset, in.addrCount};
    }
};

/**
 * Emits instructions into a WarpTrace with rotating virtual register
 * allocation. The rotation window (kNumWarpRegs) is large enough that
 * false dependencies are negligible, mirroring a compiler that has
 * plenty of architectural registers.
 *
 * A builder can be *budgeted* (streaming mode): full() turns true once
 * the chunk holds at least the budgeted instruction count, and the
 * register-rotation cursor lives outside the builder so it survives
 * across the chunks of one warp. Emitting past the budget is allowed
 * (the budget is a soft watermark); generators should simply check
 * full() between logical instruction groups.
 */
class TraceBuilder
{
  public:
    /** Unbounded builder with its own register cursor (eager mode). */
    explicit TraceBuilder(WarpTrace &trace);

    /**
     * Budgeted builder for one chunk of a streamed trace.
     *
     * @param trace The chunk to append to.
     * @param instr_budget Soft cap on instructions for this chunk.
     * @param reg_cursor Rotation cursor persisted by the caller
     *        across refills of the same warp.
     */
    TraceBuilder(WarpTrace &trace, size_t instr_budget,
                 uint8_t &reg_cursor);

    /** True once the chunk reached its instruction budget. */
    bool
    full() const
    {
        return trace.instrs.size() >= budget;
    }

    /** The chunk being built (for eager-generator adapters). */
    WarpTrace &buffer() { return trace; }

    /** Emit an ALU op; returns the destination register. */
    Reg alu(Op op, Reg a = kNoReg, Reg b = kNoReg,
            uint32_t mask = 0xffffffffu);

    /** Shorthand for a chain of @p n identical ALU ops. */
    void aluChain(Op op, int n, uint32_t mask = 0xffffffffu);

    /**
     * Emit a global load with per-lane addresses; returns the loaded
     * register. Lanes beyond addrs.size() are inactive.
     */
    Reg load(std::span<const uint64_t> lane_addrs, Reg addr_src = kNoReg);

    /** Emit a global store of register @p value. */
    void store(std::span<const uint64_t> lane_addrs, Reg value);

    /** Emit a global atomic reduction (no destination register). */
    void atomic(std::span<const uint64_t> lane_addrs, Reg value);

    /** Emit a shared-memory load (no global traffic). */
    Reg sharedLoad(uint32_t mask = 0xffffffffu);

    /** Emit a shared-memory store. */
    void sharedStore(Reg value, uint32_t mask = 0xffffffffu);

    /** Emit loop/branch control. */
    void control(uint32_t mask = 0xffffffffu);

    /** Emit a CTA barrier. */
    void barrier();

    /** Emit the warp terminator. Must be the last instruction. */
    void exit();

  private:
    WarpTrace &trace;
    size_t budget;
    uint8_t ownCursor = 0;
    uint8_t *cursor;

    Reg allocReg();
    uint32_t pushAddrs(std::span<const uint64_t> lane_addrs,
                       uint16_t &count);
};

/** Active mask with the lowest @p n lanes set. */
uint32_t maskOfLanes(int n);

} // namespace gsuite

#endif // GSUITE_SIMGPU_TRACE_HPP
