/**
 * @file
 * The GPU memory hierarchy: per-SM sectored L1D caches with finite
 * MSHR tables, an address-sliced L2 (one CacheLevel per slice,
 * chained to a banked DRAM channel via MemLevel::setNextLevel), fed
 * through a memory-access coalescer.
 *
 * The interface is split into three phases so the simulator can step
 * SMs concurrently while staying bit-identical across worker-thread
 * counts:
 *
 *  1. beginAccess() — called from the issuing SM's worker. Coalesces
 *     lanes into sectors, probes that SM's L1 (state only ever
 *     touched by its owner) and claims L1 MSHR entries for every
 *     sector headed past the L1. Pure L1-hit loads complete
 *     immediately; anything that needs L2/DRAM is parked (at most one
 *     request per SM, enforced by the LSU port).
 *  2. resolveSlice() — called once per slice per cycle, each slice by
 *     exactly one worker. Walks the parked requests in SM-index order
 *     and services the sectors this slice owns through the slice's
 *     CacheLevel -> DramChannel chain, so the L2/DRAM ordering is a
 *     deterministic function of (cycle, slice, sm) and never of
 *     thread scheduling. A sector can be back-pressured (L2 MSHRs
 *     exhausted or the DRAM queue full); it then retries on the next
 *     resolveSlice() call, which keeps its SM parked across cycles.
 *  3. finishAccess() — called from the owning SM's worker once
 *     parkedComplete(). Merges per-sector completions, applies L1
 *     fills, releases L1 MSHR entries, and folds the slice-side
 *     counters into the SM's stats.
 *
 * warpAccess() bundles the three phases for serial callers (unit
 * tests, offline tools); the simulator drives the phases directly.
 */

#ifndef GSUITE_SIMGPU_MEMORYSYSTEM_HPP
#define GSUITE_SIMGPU_MEMORYSYSTEM_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "simgpu/GpuConfig.hpp"
#include "simgpu/KernelStats.hpp"
#include "simgpu/MemLevel.hpp"

namespace gsuite {

/** Kinds of global accesses with distinct cache policies. */
enum class MemAccessKind {
    Load,   ///< LDG: allocates in L1 and L2
    Store,  ///< STG: write-through, no L1 allocate, L2 allocate
    Atomic, ///< ATOM: performed at L2, bypasses L1
};

/** Result of one warp-level memory instruction. */
struct MemAccessResult {
    uint64_t completion = 0; ///< cycle when the value is usable
    int sectors = 0;         ///< unique 32B sectors touched
    int lsuCycles = 1;       ///< LSU occupancy charged for the access
};

/**
 * Orchestrates coalescing and the chained cache/DRAM levels. All
 * per-launch counters are written into per-SM KernelStats passed by
 * the caller, so concurrent SMs never share a counter.
 */
class MemorySystem
{
  public:
    /**
     * Sentinel returned by l1MshrNextRelease() when a release cycle
     * is not yet known (same bit pattern as the SM's kNoEvent).
     */
    static constexpr uint64_t kReleaseUnknown =
        MshrTable::kPendingRelease;

    explicit MemorySystem(const GpuConfig &cfg);

    /**
     * Phase 1: coalesce and probe L1 for one warp-level access.
     *
     * @param sm Issuing SM index (selects the L1; caller must be the
     *        SM's owning worker).
     * @param cycle Issue cycle.
     * @param lane_addrs Per-lane byte addresses (inactive lanes absent).
     * @param kind Load / store / atomic.
     * @param stats The issuing SM's statistics.
     * @param out Filled with sectors/lsuCycles always; completion only
     *        when the access completed in L1.
     * @return True if complete; false if parked for slice resolution.
     */
    bool beginAccess(int sm, uint64_t cycle,
                     std::span<const uint64_t> lane_addrs,
                     MemAccessKind kind, KernelStats &stats,
                     MemAccessResult &out);

    /**
     * Phase 2: service every parked sector owned by @p slice, in
     * SM-index order, through the slice's CacheLevel -> DramChannel
     * chain. Each slice must be resolved by exactly one caller per
     * cycle. Back-pressured sectors stay pending for the next call.
     */
    void resolveSlice(int slice);

    /**
     * Phase 3: complete the SM's parked request — apply L1 fills,
     * release L1 MSHR entries, fold L2/DRAM counters into @p stats —
     * and return the warp-level completion cycle. Must only be
     * called when parkedComplete(sm).
     */
    uint64_t finishAccess(int sm, KernelStats &stats);

    /** True while @p sm has a parked (unfinished) request. */
    bool
    hasParked(int sm) const
    {
        return parked[static_cast<size_t>(sm)].active;
    }

    /**
     * True when every sector of @p sm's parked request has been
     * resolved by its slice (finishAccess may run). Also true when
     * nothing is parked.
     */
    bool parkedComplete(int sm) const;

    /**
     * True while any SM's parked request still has unresolved
     * sectors — the simulator must keep calling resolveSlice() every
     * cycle (no fast-forward) until this clears.
     */
    bool anyParkedIncomplete() const;

    /**
     * True when @p sm's L1 MSHR table can admit a new memory
     * instruction at @p cycle (busy entries below the hit-under-miss
     * limit). The SM's issue stage gates memory instructions on this
     * and reports StallReason::MshrFull otherwise.
     */
    bool l1MshrReady(int sm, uint64_t cycle) const;

    /**
     * Earliest cycle after @p cycle at which a busy L1 MSHR entry of
     * @p sm releases, for stall-event scheduling. kReleaseUnknown
     * when some busy entry's release is not yet known (its request
     * is still in flight) — the SM must then re-poll next cycle.
     */
    uint64_t l1MshrNextRelease(int sm, uint64_t cycle) const;

    /**
     * Serial convenience wrapper running all three phases, looping
     * resolveSlice() until back-pressure drains (unit tests /
     * non-simulator callers).
     */
    MemAccessResult warpAccess(int sm, uint64_t cycle,
                               std::span<const uint64_t> lane_addrs,
                               MemAccessKind kind, KernelStats &stats);

    /** Flush all caches and reset MSHR/DRAM state (between launches). */
    void reset();

    /** Number of independent L2/DRAM slices. */
    int
    numSlices() const
    {
        return static_cast<int>(slices.size());
    }

    /** DRAM busy cycles (sum over slices) since the last reset(). */
    double dramBusyCycles() const;

    /** High-water mark of any slice's DRAM queue since reset(). */
    uint64_t dramQueuePeak() const;

  private:
    /** One coalesced sector of a parked request. */
    struct SectorReq {
        uint64_t addr = 0;    ///< sector base address
        uint64_t issueAt = 0; ///< cycle the sector enters its slice
        uint64_t done = 0;    ///< completion (filled by its slice)
        uint8_t slice = 0;
        bool needsL2 = false; ///< false: satisfied by L1 in phase 1
        bool fillL1 = false;  ///< load that missed L1: fill on finish
        bool l2Hit = false;   ///< slice-side outcome, for stats
        bool resolved = false; ///< slice produced `done`
        bool dramServed = false; ///< went all the way to DRAM
        bool rowHit = false;   ///< DRAM open-row hit, for stats
        int l1Entry = -1;      ///< L1 MSHR entry (-1: spilled/none)
        int l2Entry = -1;      ///< L2 MSHR entry while in flight
        int ticket = -1;       ///< DRAM ticket within this cycle
    };

    /** At most one parked request per SM (LSU-port invariant). */
    struct ParkedReq {
        bool active = false;
        uint64_t cycle = 0;
        MemAccessKind kind = MemAccessKind::Load;
        int maxConflict = 1;
        int numSectors = 0;
        SectorReq sectors[32];
    };

    /** One address slice: an L2 cache level chained to its DRAM. */
    struct Slice {
        CacheLevel l2;
        DramChannel dram;

        Slice(const CacheGeometry &g, const MshrConfig &mshr,
              int hit_latency, const DramConfig &dram_cfg,
              int dram_latency, double cycles_per_sector)
            : l2(g, mshr, hit_latency),
              dram(dram_cfg, dram_latency, cycles_per_sector)
        {
            l2.setNextLevel(&dram);
        }
    };

    const GpuConfig &cfg;
    /**
     * Per-SM L1 levels. They stay un-chained (next == nullptr): the
     * L1-miss hop to the slices crosses the phase barrier, so it is
     * routed by this class rather than by the level itself. Heap
     * allocation keeps the addresses stable for setNextLevel-style
     * wiring elsewhere.
     */
    std::vector<std::unique_ptr<CacheLevel>> l1;
    std::vector<std::unique_ptr<Slice>> slices;
    std::vector<ParkedReq> parked; ///< one slot per SM
    /** Fractional cycle bookkeeping: DRAM service is sub-cycle. */
    double dramCyclesPerSector; ///< per slice

    int sliceOf(uint64_t addr) const;
    /** Remap @p addr into a slice-local address (slice bits removed). */
    uint64_t sliceLocalAddr(uint64_t addr) const;
};

} // namespace gsuite

#endif // GSUITE_SIMGPU_MEMORYSYSTEM_HPP
