/**
 * @file
 * The GPU memory hierarchy: per-SM sectored L1D caches, an
 * address-sliced L2, and bandwidth-limited per-slice DRAM channels,
 * fed through a memory-access coalescer.
 *
 * The interface is split into three phases so the simulator can step
 * SMs concurrently while staying bit-identical across worker-thread
 * counts:
 *
 *  1. beginAccess() — called from the issuing SM's worker. Coalesces
 *     lanes into sectors and probes that SM's L1 (state only ever
 *     touched by its owner). Pure L1-hit loads complete immediately;
 *     anything that needs L2/DRAM is parked (at most one request per
 *     SM per cycle, enforced by the LSU port).
 *  2. resolveSlice() — called once per slice per cycle, each slice by
 *     exactly one worker. Walks the parked requests in SM-index order
 *     and services the sectors this slice owns, so the L2/DRAM
 *     ordering is a deterministic function of (cycle, slice, sm) and
 *     never of thread scheduling.
 *  3. finishAccess() — called from the owning SM's worker on the next
 *     cycle. Merges per-sector completions, applies L1 fills, and
 *     folds the slice-side counters into the SM's stats.
 *
 * warpAccess() bundles the three phases for serial callers (unit
 * tests, offline tools); the simulator drives the phases directly.
 */

#ifndef GSUITE_SIMGPU_MEMORYSYSTEM_HPP
#define GSUITE_SIMGPU_MEMORYSYSTEM_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "simgpu/Cache.hpp"
#include "simgpu/GpuConfig.hpp"
#include "simgpu/KernelStats.hpp"

namespace gsuite {

/** Kinds of global accesses with distinct cache policies. */
enum class MemAccessKind {
    Load,   ///< LDG: allocates in L1 and L2
    Store,  ///< STG: write-through, no L1 allocate, L2 allocate
    Atomic, ///< ATOM: performed at L2, bypasses L1
};

/** Result of one warp-level memory instruction. */
struct MemAccessResult {
    uint64_t completion = 0; ///< cycle when the value is usable
    int sectors = 0;         ///< unique 32B sectors touched
    int lsuCycles = 1;       ///< LSU occupancy charged for the access
};

/**
 * Orchestrates coalescing and the cache/DRAM stack. All per-launch
 * counters are written into per-SM KernelStats passed by the caller,
 * so concurrent SMs never share a counter.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const GpuConfig &cfg);

    /**
     * Phase 1: coalesce and probe L1 for one warp-level access.
     *
     * @param sm Issuing SM index (selects the L1; caller must be the
     *        SM's owning worker).
     * @param cycle Issue cycle.
     * @param lane_addrs Per-lane byte addresses (inactive lanes absent).
     * @param kind Load / store / atomic.
     * @param stats The issuing SM's statistics.
     * @param out Filled with sectors/lsuCycles always; completion only
     *        when the access completed in L1.
     * @return True if complete; false if parked for slice resolution.
     */
    bool beginAccess(int sm, uint64_t cycle,
                     std::span<const uint64_t> lane_addrs,
                     MemAccessKind kind, KernelStats &stats,
                     MemAccessResult &out);

    /**
     * Phase 2: service every parked sector owned by @p slice, in
     * SM-index order. Each slice must be resolved by exactly one
     * caller per cycle.
     */
    void resolveSlice(int slice);

    /**
     * Phase 3: complete the SM's parked request — apply L1 fills,
     * fold L2/DRAM counters into @p stats — and return the
     * warp-level completion cycle. Must only be called when
     * hasParked(sm).
     */
    uint64_t finishAccess(int sm, KernelStats &stats);

    /** True while @p sm has a parked (unfinished) request. */
    bool
    hasParked(int sm) const
    {
        return parked[static_cast<size_t>(sm)].active;
    }

    /**
     * Serial convenience wrapper running all three phases (unit
     * tests / non-simulator callers).
     */
    MemAccessResult warpAccess(int sm, uint64_t cycle,
                               std::span<const uint64_t> lane_addrs,
                               MemAccessKind kind, KernelStats &stats);

    /** Flush all caches and reset DRAM queueing (between launches). */
    void reset();

    /** Number of independent L2/DRAM slices. */
    int
    numSlices() const
    {
        return static_cast<int>(slices.size());
    }

    /** DRAM busy cycles (sum over slices) since the last reset(). */
    double dramBusyCycles() const;

  private:
    /** One coalesced sector of a parked request. */
    struct SectorReq {
        uint64_t addr = 0;    ///< sector base address
        uint64_t issueAt = 0; ///< LSU pump cycle for this sector
        uint64_t done = 0;    ///< completion (filled by its slice)
        uint8_t slice = 0;
        bool needsL2 = false; ///< false: satisfied by L1 in phase 1
        bool fillL1 = false;  ///< load that missed L1: fill on finish
        bool l2Hit = false;   ///< slice-side outcome, for stats
    };

    /** At most one parked request per SM (LSU-port invariant). */
    struct ParkedReq {
        bool active = false;
        uint64_t cycle = 0;
        MemAccessKind kind = MemAccessKind::Load;
        int maxConflict = 1;
        int numSectors = 0;
        SectorReq sectors[32];
    };

    /** One address slice: an L2 bank plus its DRAM channel. */
    struct L2Slice {
        Cache cache;
        double dramNextFree = 0.0;
        double dramBusy = 0.0;

        explicit L2Slice(const CacheGeometry &g) : cache(g) {}
    };

    const GpuConfig &cfg;
    std::vector<Cache> l1;
    std::vector<L2Slice> slices;
    std::vector<ParkedReq> parked; ///< one slot per SM
    /** Fractional cycle bookkeeping: DRAM service is sub-cycle. */
    double dramCyclesPerSector; ///< per slice

    int sliceOf(uint64_t addr) const;
    /** Remap @p addr into a slice-local address (slice bits removed). */
    uint64_t sliceLocalAddr(uint64_t addr) const;
};

} // namespace gsuite

#endif // GSUITE_SIMGPU_MEMORYSYSTEM_HPP
