/**
 * @file
 * The GPU memory hierarchy: per-SM sectored L1D caches, a shared L2,
 * and a bandwidth-limited DRAM model, fed through a memory-access
 * coalescer.
 */

#ifndef GSUITE_SIMGPU_MEMORYSYSTEM_HPP
#define GSUITE_SIMGPU_MEMORYSYSTEM_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "simgpu/Cache.hpp"
#include "simgpu/GpuConfig.hpp"
#include "simgpu/KernelStats.hpp"

namespace gsuite {

/** Kinds of global accesses with distinct cache policies. */
enum class MemAccessKind {
    Load,   ///< LDG: allocates in L1 and L2
    Store,  ///< STG: write-through, no L1 allocate, L2 allocate
    Atomic, ///< ATOM: performed at L2, bypasses L1
};

/** Result of one warp-level memory instruction. */
struct MemAccessResult {
    uint64_t completion = 0; ///< cycle when the value is usable
    int sectors = 0;         ///< unique 32B sectors touched
    int lsuCycles = 1;       ///< LSU occupancy charged for the access
};

/**
 * Orchestrates coalescing and the cache/DRAM stack. All per-launch
 * counters are written into the KernelStats passed to warpAccess.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const GpuConfig &cfg);

    /**
     * Perform one warp-level global-memory instruction.
     *
     * @param sm Issuing SM index (selects the L1).
     * @param cycle Issue cycle.
     * @param lane_addrs Per-lane byte addresses (inactive lanes absent).
     * @param kind Load / store / atomic.
     * @param stats Launch statistics to update.
     */
    MemAccessResult warpAccess(int sm, uint64_t cycle,
                               std::span<const uint64_t> lane_addrs,
                               MemAccessKind kind, KernelStats &stats);

    /** Flush all caches and reset DRAM queueing (between launches). */
    void reset();

    /** DRAM busy cycles accumulated since the last reset(). */
    double dramBusyCycles() const { return dramBusy; }

  private:
    const GpuConfig &cfg;
    std::vector<Cache> l1;
    Cache l2;
    /** Fractional cycle bookkeeping: DRAM service is sub-cycle. */
    double dramNextFree = 0.0;
    double dramBusy = 0.0;
    double dramCyclesPerSector;

    /** Sector-granular access through L1 -> L2 -> DRAM. */
    uint64_t accessSector(int sm, uint64_t addr, MemAccessKind kind,
                          uint64_t cycle, KernelStats &stats);
};

} // namespace gsuite

#endif // GSUITE_SIMGPU_MEMORYSYSTEM_HPP
