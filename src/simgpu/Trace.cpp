#include "simgpu/Trace.hpp"

#include "util/Logging.hpp"

namespace gsuite {

TraceBuilder::TraceBuilder(WarpTrace &trace)
    : trace(trace), budget(~size_t{0}), cursor(&ownCursor)
{
}

TraceBuilder::TraceBuilder(WarpTrace &trace, size_t instr_budget,
                           uint8_t &reg_cursor)
    : trace(trace), budget(instr_budget), cursor(&reg_cursor)
{
}

Reg
TraceBuilder::allocReg()
{
    const Reg r = *cursor;
    *cursor = static_cast<uint8_t>((*cursor + 1) % kNumWarpRegs);
    return r;
}

uint32_t
TraceBuilder::pushAddrs(std::span<const uint64_t> lane_addrs,
                        uint16_t &count)
{
    panicIf(lane_addrs.size() > 32, "more than 32 lane addresses");
    const uint32_t off = static_cast<uint32_t>(trace.addrs.size());
    trace.addrs.insert(trace.addrs.end(), lane_addrs.begin(),
                       lane_addrs.end());
    count = static_cast<uint16_t>(lane_addrs.size());
    return off;
}

Reg
TraceBuilder::alu(Op op, Reg a, Reg b, uint32_t mask)
{
    SimInstr in;
    in.op = op;
    in.dst = allocReg();
    in.srcA = a;
    in.srcB = b;
    in.activeMask = mask;
    trace.instrs.push_back(in);
    return in.dst;
}

void
TraceBuilder::aluChain(Op op, int n, uint32_t mask)
{
    Reg prev = kNoReg;
    for (int i = 0; i < n; ++i)
        prev = alu(op, prev, kNoReg, mask);
}

Reg
TraceBuilder::load(std::span<const uint64_t> lane_addrs, Reg addr_src)
{
    SimInstr in;
    in.op = Op::LDG;
    in.dst = allocReg();
    in.srcA = addr_src;
    in.activeMask = maskOfLanes(static_cast<int>(lane_addrs.size()));
    in.addrOffset = pushAddrs(lane_addrs, in.addrCount);
    trace.instrs.push_back(in);
    return in.dst;
}

void
TraceBuilder::store(std::span<const uint64_t> lane_addrs, Reg value)
{
    SimInstr in;
    in.op = Op::STG;
    in.srcA = value;
    in.activeMask = maskOfLanes(static_cast<int>(lane_addrs.size()));
    in.addrOffset = pushAddrs(lane_addrs, in.addrCount);
    trace.instrs.push_back(in);
}

void
TraceBuilder::atomic(std::span<const uint64_t> lane_addrs, Reg value)
{
    SimInstr in;
    in.op = Op::ATOM;
    in.srcA = value;
    in.activeMask = maskOfLanes(static_cast<int>(lane_addrs.size()));
    in.addrOffset = pushAddrs(lane_addrs, in.addrCount);
    trace.instrs.push_back(in);
}

Reg
TraceBuilder::sharedLoad(uint32_t mask)
{
    SimInstr in;
    in.op = Op::LDS;
    in.dst = allocReg();
    in.activeMask = mask;
    trace.instrs.push_back(in);
    return in.dst;
}

void
TraceBuilder::sharedStore(Reg value, uint32_t mask)
{
    SimInstr in;
    in.op = Op::STS;
    in.srcA = value;
    in.activeMask = mask;
    trace.instrs.push_back(in);
}

void
TraceBuilder::control(uint32_t mask)
{
    SimInstr in;
    in.op = Op::CTRL;
    in.activeMask = mask;
    trace.instrs.push_back(in);
}

void
TraceBuilder::barrier()
{
    SimInstr in;
    in.op = Op::BAR;
    trace.instrs.push_back(in);
}

void
TraceBuilder::exit()
{
    SimInstr in;
    in.op = Op::EXIT;
    trace.instrs.push_back(in);
}

uint32_t
maskOfLanes(int n)
{
    panicIf(n < 0 || n > 32, "lane count out of range");
    if (n == 32)
        return 0xffffffffu;
    if (n == 0)
        return 0;
    return (1u << n) - 1;
}

} // namespace gsuite
