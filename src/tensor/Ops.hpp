/**
 * @file
 * Dense linear-algebra operations backing the sgemm core kernel and the
 * elementwise activation kernels.
 *
 * These are the *functional semantics*; the timing side of the same
 * operations lives in the kernel trace generators (src/kernels).
 */

#ifndef GSUITE_TENSOR_OPS_HPP
#define GSUITE_TENSOR_OPS_HPP

#include "tensor/DenseMatrix.hpp"

namespace gsuite {

/**
 * C = alpha * A x B + beta * C, row-major blocked GEMM (the cuBLAS
 * sgemm stand-in). fatal() on shape mismatch.
 */
void gemm(const DenseMatrix &a, const DenseMatrix &b, DenseMatrix &c,
          float alpha = 1.0f, float beta = 0.0f);

/** out = relu(in), elementwise; aliasing in == out is allowed. */
void relu(const DenseMatrix &in, DenseMatrix &out);

/** out = sigmoid(in), elementwise; aliasing allowed. */
void sigmoid(const DenseMatrix &in, DenseMatrix &out);

/** out = alpha * a + beta * b, elementwise; shapes must match. */
void addScaled(const DenseMatrix &a, const DenseMatrix &b, float alpha,
               float beta, DenseMatrix &out);

/** Scale every row r of @p m by scale[r] in place. */
void scaleRows(DenseMatrix &m, const std::vector<float> &scale);

/** Add bias vector (length cols) to every row in place. */
void addBias(DenseMatrix &m, const std::vector<float> &bias);

} // namespace gsuite

#endif // GSUITE_TENSOR_OPS_HPP
