#include "tensor/DenseMatrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/Logging.hpp"
#include "util/Random.hpp"

namespace gsuite {

DenseMatrix::DenseMatrix(int64_t rows, int64_t cols)
    : nRows(rows), nCols(cols),
      buf(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f)
{
    if (rows < 0 || cols < 0)
        panic("DenseMatrix with negative shape");
}

void
DenseMatrix::fill(float value)
{
    std::fill(buf.begin(), buf.end(), value);
}

void
DenseMatrix::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &v : buf)
        v = rng.nextFloat(lo, hi);
}

void
DenseMatrix::fillGlorot(Rng &rng)
{
    const double fan = static_cast<double>(nRows + nCols);
    const float bound =
        fan > 0 ? static_cast<float>(std::sqrt(6.0 / fan)) : 0.0f;
    fillUniform(rng, -bound, bound);
}

void
DenseMatrix::resize(int64_t rows, int64_t cols)
{
    nRows = rows;
    nCols = cols;
    buf.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f);
}

double
DenseMatrix::maxAbsDiff(const DenseMatrix &a, const DenseMatrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        fatal("maxAbsDiff on mismatched shapes [%ld x %ld] vs [%ld x %ld]",
              (long)a.rows(), (long)a.cols(), (long)b.rows(),
              (long)b.cols());
    double maxDiff = 0.0;
    for (size_t i = 0; i < a.buf.size(); ++i)
        maxDiff = std::max(
            maxDiff,
            static_cast<double>(std::fabs(a.buf[i] - b.buf[i])));
    return maxDiff;
}

bool
DenseMatrix::allClose(const DenseMatrix &a, const DenseMatrix &b,
                      double tol)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return maxAbsDiff(a, b) <= tol;
}

} // namespace gsuite
