/**
 * @file
 * Row-major dense float matrix — the feature-matrix container.
 *
 * This is the stand-in for the device tensors the paper's CUDA kernels
 * operate on. Storage is a contiguous std::vector<float> so kernel
 * trace generators can derive per-thread global-memory addresses from
 * the (virtual) base address of the buffer.
 */

#ifndef GSUITE_TENSOR_DENSEMATRIX_HPP
#define GSUITE_TENSOR_DENSEMATRIX_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gsuite {

class Rng;

/** Row-major dense matrix of float32, shape [rows x cols]. */
class DenseMatrix
{
  public:
    /** Empty 0x0 matrix. */
    DenseMatrix() = default;

    /** Zero-initialized matrix of the given shape. */
    DenseMatrix(int64_t rows, int64_t cols);

    int64_t rows() const { return nRows; }
    int64_t cols() const { return nCols; }
    int64_t size() const { return nRows * nCols; }

    /** Element access (row, col); no bounds checks in release builds. */
    float &
    at(int64_t r, int64_t c)
    {
        return buf[static_cast<std::size_t>(r) * nCols + c];
    }

    float
    at(int64_t r, int64_t c) const
    {
        return buf[static_cast<std::size_t>(r) * nCols + c];
    }

    /** Raw storage access for kernels. */
    float *data() { return buf.data(); }
    const float *data() const { return buf.data(); }

    /** Pointer to the start of row @p r. */
    float *rowPtr(int64_t r) { return buf.data() + r * nCols; }
    const float *rowPtr(int64_t r) const { return buf.data() + r * nCols; }

    /** Set every element to @p value. */
    void fill(float value);

    /** Set every element to zero. */
    void setZero() { fill(0.0f); }

    /** Fill with uniform values in [lo, hi) from @p rng. */
    void fillUniform(Rng &rng, float lo, float hi);

    /**
     * Glorot/Xavier-uniform initialization, the standard GNN weight
     * init: bound = sqrt(6 / (fan_in + fan_out)).
     */
    void fillGlorot(Rng &rng);

    /** Resize to a new shape; contents become zero. */
    void resize(int64_t rows, int64_t cols);

    /** Max |a - b| over all elements; fatal() on shape mismatch. */
    static double maxAbsDiff(const DenseMatrix &a, const DenseMatrix &b);

    /** True if shapes and all elements match within @p tol. */
    static bool allClose(const DenseMatrix &a, const DenseMatrix &b,
                         double tol = 1e-4);

  private:
    int64_t nRows = 0;
    int64_t nCols = 0;
    std::vector<float> buf;
};

} // namespace gsuite

#endif // GSUITE_TENSOR_DENSEMATRIX_HPP
