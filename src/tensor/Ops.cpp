#include "tensor/Ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/Logging.hpp"

namespace gsuite {

void
gemm(const DenseMatrix &a, const DenseMatrix &b, DenseMatrix &c,
     float alpha, float beta)
{
    const int64_t m = a.rows();
    const int64_t k = a.cols();
    const int64_t n = b.cols();
    if (b.rows() != k)
        fatal("gemm inner dimension mismatch: A is [%ld x %ld], "
              "B is [%ld x %ld]",
              (long)m, (long)k, (long)b.rows(), (long)n);
    if (c.rows() != m || c.cols() != n) {
        if (beta != 0.0f)
            fatal("gemm with beta != 0 requires a correctly shaped C");
        c.resize(m, n);
    }

    if (beta == 0.0f)
        c.setZero();
    else if (beta != 1.0f) {
        for (int64_t i = 0; i < m; ++i)
            for (int64_t j = 0; j < n; ++j)
                c.at(i, j) *= beta;
    }

    // Cache-blocked i-k-j loop order: the inner loop streams rows of B
    // and C, which is the right access pattern for row-major storage.
    constexpr int64_t blk = 64;
    for (int64_t i0 = 0; i0 < m; i0 += blk) {
        const int64_t iEnd = std::min(i0 + blk, m);
        for (int64_t k0 = 0; k0 < k; k0 += blk) {
            const int64_t kEnd = std::min(k0 + blk, k);
            for (int64_t i = i0; i < iEnd; ++i) {
                const float *aRow = a.rowPtr(i);
                float *cRow = c.rowPtr(i);
                for (int64_t kk = k0; kk < kEnd; ++kk) {
                    const float av = alpha * aRow[kk];
                    if (av == 0.0f)
                        continue;
                    const float *bRow = b.rowPtr(kk);
                    for (int64_t j = 0; j < n; ++j)
                        cRow[j] += av * bRow[j];
                }
            }
        }
    }
}

void
relu(const DenseMatrix &in, DenseMatrix &out)
{
    if (&in != &out)
        out.resize(in.rows(), in.cols());
    const float *src = in.data();
    float *dst = out.data();
    const int64_t total = in.size();
    for (int64_t i = 0; i < total; ++i)
        dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void
sigmoid(const DenseMatrix &in, DenseMatrix &out)
{
    if (&in != &out)
        out.resize(in.rows(), in.cols());
    const float *src = in.data();
    float *dst = out.data();
    const int64_t total = in.size();
    for (int64_t i = 0; i < total; ++i)
        dst[i] = 1.0f / (1.0f + std::exp(-src[i]));
}

void
addScaled(const DenseMatrix &a, const DenseMatrix &b, float alpha,
          float beta, DenseMatrix &out)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        fatal("addScaled shape mismatch: [%ld x %ld] vs [%ld x %ld]",
              (long)a.rows(), (long)a.cols(), (long)b.rows(),
              (long)b.cols());
    if (&a != &out && &b != &out)
        out.resize(a.rows(), a.cols());
    const int64_t total = a.size();
    const float *pa = a.data();
    const float *pb = b.data();
    float *po = out.data();
    for (int64_t i = 0; i < total; ++i)
        po[i] = alpha * pa[i] + beta * pb[i];
}

void
scaleRows(DenseMatrix &m, const std::vector<float> &scale)
{
    if (static_cast<int64_t>(scale.size()) != m.rows())
        fatal("scaleRows: %zu scales for %ld rows", scale.size(),
              (long)m.rows());
    for (int64_t r = 0; r < m.rows(); ++r) {
        float *row = m.rowPtr(r);
        const float s = scale[static_cast<size_t>(r)];
        for (int64_t c = 0; c < m.cols(); ++c)
            row[c] *= s;
    }
}

void
addBias(DenseMatrix &m, const std::vector<float> &bias)
{
    if (static_cast<int64_t>(bias.size()) != m.cols())
        fatal("addBias: %zu biases for %ld columns", bias.size(),
              (long)m.cols());
    for (int64_t r = 0; r < m.rows(); ++r) {
        float *row = m.rowPtr(r);
        for (int64_t c = 0; c < m.cols(); ++c)
            row[c] += bias[static_cast<size_t>(c)];
    }
}

} // namespace gsuite
