/**
 * @file
 * The hardware-profiler stand-in ("nvprof" in the paper's setup).
 *
 * Real counters come from a real V100; here we replay the same kernel
 * memory traces through an *independent* cache model configured like
 * the actual Volta hardware (128 KB sectored L1 per SM, 6 MB L2 with
 * full-line fills) rather than like GPGPU-Sim's V100 model (3 MB
 * sectored L2). Fig. 8's hardware-vs-simulator comparison needs these
 * two genuinely different measurement paths.
 */

#ifndef GSUITE_PROFILER_HWPROFILER_HPP
#define GSUITE_PROFILER_HWPROFILER_HPP

#include <cstdint>

#include "simgpu/Cache.hpp"
#include "simgpu/GpuConfig.hpp"
#include "simgpu/KernelLaunch.hpp"

namespace gsuite {

/** Configuration of the hardware cache model. */
struct HwProfilerConfig {
    /**
     * SMs to spread CTAs over. Must match the simulated machine so
     * hardware-vs-simulator hit-rate deltas (Fig. 8) reflect
     * cache-geometry differences, not differences in how many CTAs
     * share an L1. The suite layer (Runner::makeEngine) derives this
     * from the resolved GpuConfig; the default only covers direct
     * construction and matches the v100-sim preset.
     */
    int numSms = 8;
    /**
     * Grid-share divisor matching GpuConfig::smSampleFactor, so the
     * profiler replays exactly the CTA subset the simulator runs.
     * Derived from the resolved GpuConfig by Runner::makeEngine,
     * like numSms.
     */
    int smSampleFactor = 10;
    /** Volta L1: 128 KB, 128 B lines, 32 B sectors. */
    CacheGeometry l1{128 * 1024, 128, 32, 64, false};
    /**
     * Volta L2: 6 MB; modeled with full-line fills (sectorBytes ==
     * lineBytes), the behaviour nvprof's l2 counters reflect.
     */
    CacheGeometry l2{6 * 1024 * 1024, 128, 128, 16, true};
    /** CTA sampling cap, matching the simulator's default. */
    int64_t maxCtas = 2048;

    /**
     * Worker threads replaying per-SM L1 slices (0 = auto,
     * 1 = serial). Results are bit-identical for every value: each
     * modeled SM's L1 only ever sees its own CTAs' accesses in CTA
     * order, and the shared L2 is replayed afterwards in the global
     * CTA order the serial replay uses.
     */
    int numThreads = 1;
};

/** nvprof-style cache hit-rate measurements for one launch. */
struct HwProfileResult {
    uint64_t l1Hits = 0;
    uint64_t l1Misses = 0;
    uint64_t l2Hits = 0;
    uint64_t l2Misses = 0;

    double
    l1HitRate() const
    {
        const uint64_t t = l1Hits + l1Misses;
        return t ? static_cast<double>(l1Hits) / t : 0.0;
    }
    double
    l2HitRate() const
    {
        const uint64_t t = l2Hits + l2Misses;
        return t ? static_cast<double>(l2Hits) / t : 0.0;
    }
};

/** Trace-replay cache profiler. */
class HwProfiler
{
  public:
    explicit HwProfiler(HwProfilerConfig cfg = {});

    /**
     * Replay @p launch's global-memory accesses through the hardware
     * cache model and return hit rates. CTAs are distributed
     * round-robin across the modeled SMs' L1s.
     */
    HwProfileResult profile(const KernelLaunch &launch);

  private:
    HwProfilerConfig cfg;
};

} // namespace gsuite

#endif // GSUITE_PROFILER_HWPROFILER_HPP
