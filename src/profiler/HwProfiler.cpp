#include "profiler/HwProfiler.hpp"

#include <algorithm>
#include <vector>

#include "util/Logging.hpp"

namespace gsuite {

HwProfiler::HwProfiler(HwProfilerConfig cfg) : cfg(cfg)
{
}

HwProfileResult
HwProfiler::profile(const KernelLaunch &launch)
{
    panicIf(!launch.hasTraceGen(), "profiling a launch without traces");

    std::vector<Cache> l1;
    l1.reserve(static_cast<size_t>(cfg.numSms));
    for (int i = 0; i < cfg.numSms; ++i)
        l1.emplace_back(cfg.l1);
    Cache l2(cfg.l2);

    HwProfileResult res;
    const int64_t expected =
        (launch.dims.numCtas +
         static_cast<int64_t>(cfg.smSampleFactor) - 1) /
        static_cast<int64_t>(cfg.smSampleFactor);
    const int64_t ctas = std::min(expected, cfg.maxCtas);
    const int warps = launch.dims.warpsPerCta();
    const uint64_t sector =
        static_cast<uint64_t>(cfg.l1.sectorBytes);

    WarpTrace trace;
    uint64_t now = 0; // pseudo-time for LRU ordering
    for (int64_t cta = 0; cta < ctas; ++cta) {
        Cache &myL1 = l1[static_cast<size_t>(
            cta % static_cast<int64_t>(cfg.numSms))];
        for (int w = 0; w < warps; ++w) {
            // Stream the warp's trace in bounded chunks; the cache
            // replay only needs one chunk resident at a time.
            WarpTraceStream stream = launch.makeStream(cta, w);
            uint8_t reg_cursor = 0;
            bool stream_done = false;
            while (!stream_done) {
            trace.clear();
            TraceBuilder tb(trace, 512, reg_cursor);
            stream_done = stream(tb);
            panicIf(trace.instrs.empty(),
                    "trace stream made no progress");
            for (const SimInstr &in : trace.instrs) {
                if (!isGlobalMemOp(in.op))
                    continue;
                // Coalesce to unique 32B sectors.
                uint64_t sectors[32];
                int ns = 0;
                for (uint64_t a : trace.addrsOf(in)) {
                    const uint64_t s = a / sector;
                    bool dup = false;
                    for (int i = 0; i < ns; ++i) {
                        if (sectors[i] == s) {
                            dup = true;
                            break;
                        }
                    }
                    if (!dup)
                        sectors[ns++] = s;
                }
                for (int i = 0; i < ns; ++i) {
                    const uint64_t addr = sectors[i] * sector;
                    ++now;
                    const bool use_l1 = in.op != Op::ATOM;
                    bool l1_hit = false;
                    if (use_l1) {
                        l1_hit = myL1.probe(addr, now).hit;
                        if (l1_hit)
                            ++res.l1Hits;
                        else
                            ++res.l1Misses;
                        if (l1_hit && in.op == Op::LDG)
                            continue; // served by L1
                    }
                    // L2 access (stores write through; atomics land
                    // here directly).
                    if (l2.probe(addr, now).hit)
                        ++res.l2Hits;
                    else {
                        ++res.l2Misses;
                        l2.fill(addr, now, now);
                    }
                    if (use_l1 && in.op == Op::LDG && !l1_hit)
                        myL1.fill(addr, now, now);
                }
            }
            }
        }
    }
    return res;
}

} // namespace gsuite
