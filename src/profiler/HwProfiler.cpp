#include "profiler/HwProfiler.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "util/Logging.hpp"
#include "util/ThreadPool.hpp"

namespace gsuite {

namespace {

/** L1-side replay state and output of one modeled SM. */
struct SmReplay {
    uint64_t l1Hits = 0;
    uint64_t l1Misses = 0;
    /**
     * Addresses this SM forwards to the shared L2, grouped by CTA so
     * the L2 replay can reconstruct the global (CTA-major) order.
     */
    std::vector<std::vector<uint64_t>> l2AddrsByCta;
};

} // namespace

HwProfiler::HwProfiler(HwProfilerConfig cfg) : cfg(cfg)
{
}

HwProfileResult
HwProfiler::profile(const KernelLaunch &launch)
{
    panicIf(!launch.hasTraceGen(), "profiling a launch without traces");

    const int64_t expected =
        (launch.dims.numCtas +
         static_cast<int64_t>(cfg.smSampleFactor) - 1) /
        static_cast<int64_t>(cfg.smSampleFactor);
    const int64_t ctas = std::min(expected, cfg.maxCtas);
    const int warps = launch.dims.warpsPerCta();
    const uint64_t sector =
        static_cast<uint64_t>(cfg.l1.sectorBytes);
    const int num_sms = cfg.numSms;

    // CTAs replay in bounded windows so the per-window L2 address
    // buffers never grow with launch size (PR 1's trace-memory goal
    // holds). Within a window, phase 1 replays each modeled SM's L1
    // slice (parallel across SMs): CTAs are distributed round-robin
    // (cta % numSms), so each SM's L1 sees exactly the access
    // sequence the serial replay would feed it, and LRU state only
    // depends on that per-cache relative order. L1 caches and
    // pseudo-clocks persist across windows.
    const int64_t window_ctas =
        static_cast<int64_t>(num_sms) * 4;
    std::vector<SmReplay> sms(static_cast<size_t>(num_sms));
    std::vector<Cache> l1;
    l1.reserve(static_cast<size_t>(num_sms));
    for (int i = 0; i < num_sms; ++i)
        l1.emplace_back(cfg.l1);
    std::vector<uint64_t> l1Now(static_cast<size_t>(num_sms), 0);

    int64_t window_begin = 0;
    int64_t window_end = 0;
    auto replaySm = [&](size_t sm_index, int /*lane*/) {
        SmReplay &out = sms[sm_index];
        out.l2AddrsByCta.clear();
        Cache &myL1 = l1[sm_index];
        uint64_t &now = l1Now[sm_index];
        WarpTrace trace;
        // Windows start at multiples of numSms, so SM k's first CTA
        // in the window is window_begin + k.
        for (int64_t cta =
                 window_begin + static_cast<int64_t>(sm_index);
             cta < window_end; cta += num_sms) {
            out.l2AddrsByCta.emplace_back();
            std::vector<uint64_t> &l2_addrs =
                out.l2AddrsByCta.back();
            for (int w = 0; w < warps; ++w) {
                // Stream the warp's trace in bounded chunks; the
                // replay only needs one chunk resident at a time.
                WarpTraceStream stream = launch.makeStream(cta, w);
                uint8_t reg_cursor = 0;
                bool stream_done = false;
                while (!stream_done) {
                    trace.clear();
                    TraceBuilder tb(trace, 512, reg_cursor);
                    stream_done = stream(tb);
                    panicIf(trace.instrs.empty(),
                            "trace stream made no progress");
                    for (const SimInstr &in : trace.instrs) {
                        if (!isGlobalMemOp(in.op))
                            continue;
                        // Coalesce to unique 32B sectors.
                        uint64_t sectors[32];
                        int ns = 0;
                        for (uint64_t a : trace.addrsOf(in)) {
                            const uint64_t s = a / sector;
                            bool dup = false;
                            for (int i = 0; i < ns; ++i) {
                                if (sectors[i] == s) {
                                    dup = true;
                                    break;
                                }
                            }
                            if (!dup)
                                sectors[ns++] = s;
                        }
                        for (int i = 0; i < ns; ++i) {
                            const uint64_t addr =
                                sectors[i] * sector;
                            ++now;
                            const bool use_l1 = in.op != Op::ATOM;
                            bool l1_hit = false;
                            if (use_l1) {
                                l1_hit =
                                    myL1.probe(addr, now).hit;
                                if (l1_hit)
                                    ++out.l1Hits;
                                else
                                    ++out.l1Misses;
                                if (l1_hit && in.op == Op::LDG)
                                    continue; // served by L1
                            }
                            // The access reaches L2 (stores write
                            // through; atomics land there directly).
                            l2_addrs.push_back(addr);
                            if (use_l1 && in.op == Op::LDG &&
                                !l1_hit)
                                myL1.fill(addr, now, now);
                        }
                    }
                }
            }
        }
    };

    int threads = cfg.numThreads > 0
                      ? cfg.numThreads
                      : std::min(ThreadPool::defaultLanes(), num_sms);
    threads = std::clamp(threads, 1, num_sms);
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1)
        pool = std::make_unique<ThreadPool>(threads);

    HwProfileResult res;
    Cache l2(cfg.l2);
    uint64_t l2Now = 0;
    for (window_begin = 0; window_begin < ctas;
         window_begin += window_ctas) {
        window_end = std::min(window_begin + window_ctas, ctas);
        if (pool)
            pool->parallelFor(sms.size(), replaySm);
        else
            for (size_t sm = 0; sm < sms.size(); ++sm)
                replaySm(sm, 0);

        // Phase 2 — shared-L2 replay of the window in global CTA
        // order (the order the serial replay issues), keeping L2
        // LRU decisions identical.
        for (int64_t cta = window_begin; cta < window_end; ++cta) {
            const SmReplay &sm =
                sms[static_cast<size_t>(cta % num_sms)];
            const size_t slot =
                static_cast<size_t>((cta - window_begin) / num_sms);
            for (const uint64_t addr : sm.l2AddrsByCta[slot]) {
                ++l2Now;
                if (l2.probe(addr, l2Now).hit)
                    ++res.l2Hits;
                else {
                    ++res.l2Misses;
                    l2.fill(addr, l2Now, l2Now);
                }
            }
        }
    }
    for (const SmReplay &sm : sms) {
        res.l1Hits += sm.l1Hits;
        res.l1Misses += sm.l1Misses;
    }
    return res;
}

} // namespace gsuite
