#include "kernels/Spgemm.hpp"

#include <algorithm>
#include <array>

#include "sparse/SparseOps.hpp"
#include "util/Logging.hpp"

namespace gsuite {

SpgemmKernel::SpgemmKernel(std::string label, const CsrMatrix &a,
                           const CsrMatrix &b, CsrMatrix &c)
    : label(std::move(label)), a(a), b(b), c(c)
{
}

void
SpgemmKernel::execute()
{
    c = spgemm(a, b);
}

KernelLaunch
SpgemmKernel::makeLaunch(DeviceAllocator &alloc) const
{
    panicIf(c.rows() != a.rows(),
            "SpGEMM makeLaunch() before execute()");

    const int64_t n = a.rows();

    const uint64_t arp = alloc.map(
        a.rowPtr.data(), static_cast<uint64_t>(a.rowPtr.size()) * 8);
    const uint64_t aci = alloc.map(
        a.colIdx.data(),
        static_cast<uint64_t>(std::max<int64_t>(a.nnz(), 1)) * 8);
    const uint64_t ava =
        a.vals.empty() ? aci
                       : alloc.map(a.vals.data(),
                                   static_cast<uint64_t>(a.nnz()) * 4);
    const uint64_t brp = alloc.map(
        b.rowPtr.data(), static_cast<uint64_t>(b.rowPtr.size()) * 8);
    const uint64_t bci = alloc.map(
        b.colIdx.data(),
        static_cast<uint64_t>(std::max<int64_t>(b.nnz(), 1)) * 8);
    const uint64_t bva =
        b.vals.empty() ? bci
                       : alloc.map(b.vals.data(),
                                   static_cast<uint64_t>(b.nnz()) * 4);
    const uint64_t cci = alloc.map(
        c.colIdx.data(),
        static_cast<uint64_t>(std::max<int64_t>(c.nnz(), 1)) * 8);
    const uint64_t cva = alloc.map(
        c.vals.data(),
        static_cast<uint64_t>(std::max<int64_t>(c.nnz(), 1)) * 4);

    KernelLaunch launch;
    launch.name = label;
    launch.kind = KernelClass::SpGemm;
    launch.dims.numCtas = ceilDiv(n, kCtaWarps); // one warp per row
    launch.dims.threadsPerCta = kCtaThreads;

    // Streaming generator, resumable at both loop levels (A-row
    // chunks and the lock-step B expansion) — hub rows expand to
    // enormous traces, so suspension must be possible mid-expansion.
    const CsrMatrix *pa = &a;
    const CsrMatrix *pb = &b;
    const CsrMatrix *pc = &c;
    launch.streamTrace = [=](int64_t cta, int warp) -> WarpTraceStream {
        const int64_t row = cta * kCtaWarps + warp;
        if (row >= n) {
            return [](TraceBuilder &tb) {
                tb.exit();
                return true;
            };
        }

        struct State {
            bool prologueDone = false;
            int64_t ch = 0;          ///< current A chunk base
            bool chunkHeaderDone = false;
            int64_t t = 0;           ///< lock-step iteration in chunk
            int64_t maxBnnz = 0;
            Reg rav = kNoReg;        ///< A values, alive across calls
            Reg rbp = kNoReg;        ///< B row extents, ditto
            int64_t sch = 0;         ///< store chunk base
        };
        State st;
        st.ch = pa->rowPtr[static_cast<size_t>(row)];
        st.sch = pc->rowPtr[static_cast<size_t>(row)];

        return [=](TraceBuilder &tb) mutable {
            std::array<uint64_t, 32> addrs{};
            const int64_t aend =
                pa->rowPtr[static_cast<size_t>(row) + 1];

            if (!st.prologueDone) {
                // Row extent of A.
                const std::array<uint64_t, 2> rp = {
                    arp + static_cast<uint64_t>(row) * 8,
                    arp + static_cast<uint64_t>(row + 1) * 8};
                Reg r = tb.load({rp.data(), rp.size()});
                tb.alu(Op::INT, r);
                tb.control();
                st.prologueDone = true;
            }

            // Lanes take A-row entries in chunks of 32.
            for (; st.ch < aend; st.ch += 32, st.chunkHeaderDone = false,
                                 st.t = 0) {
                const int64_t ch = st.ch;
                const int lanes = static_cast<int>(
                    std::min<int64_t>(32, aend - ch));
                const uint32_t mask = maskOfLanes(lanes);

                if (!st.chunkHeaderDone) {
                    if (tb.full())
                        return false;
                    // Coalesced loads of the A entries.
                    for (int l = 0; l < lanes; ++l)
                        addrs[static_cast<size_t>(l)] =
                            aci + static_cast<uint64_t>(ch + l) * 8;
                    const Reg rac = tb.load(
                        {addrs.data(), static_cast<size_t>(lanes)});
                    for (int l = 0; l < lanes; ++l)
                        addrs[static_cast<size_t>(l)] =
                            ava + static_cast<uint64_t>(ch + l) * 4;
                    st.rav = tb.load(
                        {addrs.data(), static_cast<size_t>(lanes)});

                    // Divergent loads of each lane's B row extent.
                    st.maxBnnz = 0;
                    for (int l = 0; l < lanes; ++l) {
                        const int64_t acol =
                            pa->colIdx[static_cast<size_t>(ch + l)];
                        addrs[static_cast<size_t>(l)] =
                            brp + static_cast<uint64_t>(acol) * 8;
                        st.maxBnnz =
                            std::max(st.maxBnnz, pb->rowNnz(acol));
                    }
                    st.rbp = tb.load(
                        {addrs.data(), static_cast<size_t>(lanes)},
                        rac);
                    tb.alu(Op::INT, st.rbp, kNoReg, mask);
                    st.chunkHeaderDone = true;
                }

                // Lock-step expansion: iteration t processes the t-th
                // nonzero of every lane's B row (divergent lanes drop
                // out as their rows end).
                for (; st.t < st.maxBnnz; ++st.t) {
                    if (tb.full())
                        return false; // resume at (st.ch, st.t)
                    const int64_t t = st.t;
                    int cnt = 0;
                    for (int l = 0; l < lanes; ++l) {
                        const int64_t acol =
                            pa->colIdx[static_cast<size_t>(ch + l)];
                        const int64_t bb =
                            pb->rowPtr[static_cast<size_t>(acol)];
                        const int64_t be =
                            pb->rowPtr[static_cast<size_t>(acol) + 1];
                        if (bb + t < be)
                            addrs[static_cast<size_t>(cnt++)] =
                                bci +
                                static_cast<uint64_t>(bb + t) * 8;
                    }
                    if (cnt == 0)
                        break;
                    const uint32_t am = maskOfLanes(cnt);
                    const Reg rbc = tb.load(
                        {addrs.data(), static_cast<size_t>(cnt)},
                        st.rbp);
                    // Matching value load (same lanes, value array).
                    for (int i = 0; i < cnt; ++i)
                        addrs[static_cast<size_t>(i)] =
                            bva +
                            (addrs[static_cast<size_t>(i)] - bci) / 2;
                    const Reg rbv = tb.load(
                        {addrs.data(), static_cast<size_t>(cnt)});
                    const Reg prod =
                        tb.alu(Op::FP32, st.rav, rbv, am);
                    // Hash-accumulator insert: hash + probe.
                    tb.alu(Op::INT, rbc, kNoReg, am);
                    tb.alu(Op::INT, prod, kNoReg, am);
                    tb.control(am);
                }
                tb.control();
            }

            // Write the finished C row (coalesced column/value
            // stores).
            const int64_t cend =
                pc->rowPtr[static_cast<size_t>(row) + 1];
            for (; st.sch < cend; st.sch += 32) {
                if (tb.full())
                    return false;
                const int64_t ch = st.sch;
                const int lanes = static_cast<int>(
                    std::min<int64_t>(32, cend - ch));
                const Reg rv2 = tb.alu(Op::INT, kNoReg, kNoReg,
                                       maskOfLanes(lanes));
                for (int l = 0; l < lanes; ++l)
                    addrs[static_cast<size_t>(l)] =
                        cci + static_cast<uint64_t>(ch + l) * 8;
                tb.store({addrs.data(), static_cast<size_t>(lanes)},
                         rv2);
                for (int l = 0; l < lanes; ++l)
                    addrs[static_cast<size_t>(l)] =
                        cva + static_cast<uint64_t>(ch + l) * 4;
                tb.store({addrs.data(), static_cast<size_t>(lanes)},
                         rv2);
            }
            tb.exit();
            return true;
        };
    };
    // CTA cost for sampled simulation: a row's trace expands each of
    // its A entries by the matching B row, so hub rows dominate — the
    // exact skew stratification exists to capture.
    launch.ctaCostHint = [=](int64_t cta) -> uint64_t {
        uint64_t cost = 1;
        for (int w = 0; w < kCtaWarps; ++w) {
            const int64_t row = cta * kCtaWarps + w;
            if (row >= n)
                break;
            const int64_t abeg =
                pa->rowPtr[static_cast<size_t>(row)];
            const int64_t aend =
                pa->rowPtr[static_cast<size_t>(row) + 1];
            for (int64_t j = abeg; j < aend; ++j) {
                const size_t bc = static_cast<size_t>(
                    pa->colIdx[static_cast<size_t>(j)]);
                cost += 1 + static_cast<uint64_t>(
                                pb->rowPtr[bc + 1] - pb->rowPtr[bc]);
            }
        }
        return cost;
    };
    return launch;
}

std::vector<IoSpan>
SpgemmKernel::ioSpans() const
{
    panicIf(c.rows() != a.rows(),
            "SpGEMM ioSpans() before execute()");
    // Mirror makeLaunch()'s map calls exactly, including the
    // max(nnz,1) floors and the empty-vals colIdx alias (no map).
    std::vector<IoSpan> spans;
    spans.push_back({&a, a.rowPtr.data(),
                     static_cast<uint64_t>(a.rowPtr.size()) * 8});
    spans.push_back(
        {&a, a.colIdx.data(),
         static_cast<uint64_t>(std::max<int64_t>(a.nnz(), 1)) * 8});
    if (!a.vals.empty())
        spans.push_back({&a, a.vals.data(),
                         static_cast<uint64_t>(a.nnz()) * 4});
    spans.push_back({&b, b.rowPtr.data(),
                     static_cast<uint64_t>(b.rowPtr.size()) * 8});
    spans.push_back(
        {&b, b.colIdx.data(),
         static_cast<uint64_t>(std::max<int64_t>(b.nnz(), 1)) * 8});
    if (!b.vals.empty())
        spans.push_back({&b, b.vals.data(),
                         static_cast<uint64_t>(b.nnz()) * 4});
    spans.push_back(
        {&c, c.colIdx.data(),
         static_cast<uint64_t>(std::max<int64_t>(c.nnz(), 1)) * 8});
    spans.push_back(
        {&c, c.vals.data(),
         static_cast<uint64_t>(std::max<int64_t>(c.nnz(), 1)) * 4});
    return spans;
}

} // namespace gsuite
