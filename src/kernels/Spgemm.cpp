#include "kernels/Spgemm.hpp"

#include <algorithm>
#include <array>

#include "sparse/SparseOps.hpp"
#include "util/Logging.hpp"

namespace gsuite {

SpgemmKernel::SpgemmKernel(std::string label, const CsrMatrix &a,
                           const CsrMatrix &b, CsrMatrix &c)
    : label(std::move(label)), a(a), b(b), c(c)
{
}

void
SpgemmKernel::execute()
{
    c = spgemm(a, b);
}

KernelLaunch
SpgemmKernel::makeLaunch(DeviceAllocator &alloc) const
{
    panicIf(c.rows() != a.rows(),
            "SpGEMM makeLaunch() before execute()");

    const int64_t n = a.rows();

    const uint64_t arp = alloc.map(
        a.rowPtr.data(), static_cast<uint64_t>(a.rowPtr.size()) * 8);
    const uint64_t aci = alloc.map(
        a.colIdx.data(),
        static_cast<uint64_t>(std::max<int64_t>(a.nnz(), 1)) * 8);
    const uint64_t ava =
        a.vals.empty() ? aci
                       : alloc.map(a.vals.data(),
                                   static_cast<uint64_t>(a.nnz()) * 4);
    const uint64_t brp = alloc.map(
        b.rowPtr.data(), static_cast<uint64_t>(b.rowPtr.size()) * 8);
    const uint64_t bci = alloc.map(
        b.colIdx.data(),
        static_cast<uint64_t>(std::max<int64_t>(b.nnz(), 1)) * 8);
    const uint64_t bva =
        b.vals.empty() ? bci
                       : alloc.map(b.vals.data(),
                                   static_cast<uint64_t>(b.nnz()) * 4);
    const uint64_t cci = alloc.map(
        c.colIdx.data(),
        static_cast<uint64_t>(std::max<int64_t>(c.nnz(), 1)) * 8);
    const uint64_t cva = alloc.map(
        c.vals.data(),
        static_cast<uint64_t>(std::max<int64_t>(c.nnz(), 1)) * 4);

    KernelLaunch launch;
    launch.name = label;
    launch.kind = KernelClass::SpGemm;
    launch.dims.numCtas = ceilDiv(n, kCtaWarps); // one warp per row
    launch.dims.threadsPerCta = kCtaThreads;

    const CsrMatrix *pa = &a;
    const CsrMatrix *pb = &b;
    const CsrMatrix *pc = &c;
    launch.genTrace = [=](int64_t cta, int warp, WarpTrace &out) {
        TraceBuilder tb(out);
        const int64_t row = cta * kCtaWarps + warp;
        if (row >= n) {
            tb.exit();
            return;
        }
        std::array<uint64_t, 32> addrs{};

        // Row extent of A.
        const std::array<uint64_t, 2> rp = {
            arp + static_cast<uint64_t>(row) * 8,
            arp + static_cast<uint64_t>(row + 1) * 8};
        Reg r = tb.load({rp.data(), rp.size()});
        tb.alu(Op::INT, r);
        tb.control();

        const int64_t abegin = pa->rowPtr[static_cast<size_t>(row)];
        const int64_t aend = pa->rowPtr[static_cast<size_t>(row) + 1];

        // Lanes take A-row entries in chunks of 32.
        for (int64_t ch = abegin; ch < aend; ch += 32) {
            const int lanes =
                static_cast<int>(std::min<int64_t>(32, aend - ch));
            const uint32_t mask = maskOfLanes(lanes);

            // Coalesced loads of the A entries.
            for (int l = 0; l < lanes; ++l)
                addrs[static_cast<size_t>(l)] =
                    aci + static_cast<uint64_t>(ch + l) * 8;
            const Reg rac =
                tb.load({addrs.data(), static_cast<size_t>(lanes)});
            for (int l = 0; l < lanes; ++l)
                addrs[static_cast<size_t>(l)] =
                    ava + static_cast<uint64_t>(ch + l) * 4;
            const Reg rav =
                tb.load({addrs.data(), static_cast<size_t>(lanes)});

            // Divergent loads of each lane's B row extent.
            int64_t max_bnnz = 0;
            for (int l = 0; l < lanes; ++l) {
                const int64_t acol =
                    pa->colIdx[static_cast<size_t>(ch + l)];
                addrs[static_cast<size_t>(l)] =
                    brp + static_cast<uint64_t>(acol) * 8;
                max_bnnz = std::max(max_bnnz, pb->rowNnz(acol));
            }
            const Reg rbp = tb.load(
                {addrs.data(), static_cast<size_t>(lanes)}, rac);
            tb.alu(Op::INT, rbp, kNoReg, mask);

            // Lock-step expansion: iteration t processes the t-th
            // nonzero of every lane's B row (divergent lanes drop
            // out as their rows end).
            for (int64_t t = 0; t < max_bnnz; ++t) {
                int cnt = 0;
                for (int l = 0; l < lanes; ++l) {
                    const int64_t acol =
                        pa->colIdx[static_cast<size_t>(ch + l)];
                    const int64_t bb =
                        pb->rowPtr[static_cast<size_t>(acol)];
                    const int64_t be =
                        pb->rowPtr[static_cast<size_t>(acol) + 1];
                    if (bb + t < be)
                        addrs[static_cast<size_t>(cnt++)] =
                            bci + static_cast<uint64_t>(bb + t) * 8;
                }
                if (cnt == 0)
                    break;
                const uint32_t am = maskOfLanes(cnt);
                const Reg rbc = tb.load(
                    {addrs.data(), static_cast<size_t>(cnt)}, rbp);
                // Matching value load (same lanes, value array).
                for (int i = 0; i < cnt; ++i)
                    addrs[static_cast<size_t>(i)] =
                        bva + (addrs[static_cast<size_t>(i)] - bci) / 2;
                const Reg rbv = tb.load(
                    {addrs.data(), static_cast<size_t>(cnt)});
                const Reg prod = tb.alu(Op::FP32, rav, rbv, am);
                // Hash-accumulator insert: hash + probe.
                tb.alu(Op::INT, rbc, kNoReg, am);
                tb.alu(Op::INT, prod, kNoReg, am);
                tb.control(am);
            }
            tb.control();
        }

        // Write the finished C row (coalesced column/value stores).
        const int64_t cbegin = pc->rowPtr[static_cast<size_t>(row)];
        const int64_t cend = pc->rowPtr[static_cast<size_t>(row) + 1];
        for (int64_t ch = cbegin; ch < cend; ch += 32) {
            const int lanes =
                static_cast<int>(std::min<int64_t>(32, cend - ch));
            const Reg rv2 = tb.alu(Op::INT, kNoReg, kNoReg,
                                   maskOfLanes(lanes));
            for (int l = 0; l < lanes; ++l)
                addrs[static_cast<size_t>(l)] =
                    cci + static_cast<uint64_t>(ch + l) * 8;
            tb.store({addrs.data(), static_cast<size_t>(lanes)}, rv2);
            for (int l = 0; l < lanes; ++l)
                addrs[static_cast<size_t>(l)] =
                    cva + static_cast<uint64_t>(ch + l) * 4;
            tb.store({addrs.data(), static_cast<size_t>(lanes)}, rv2);
        }
        tb.exit();
    };
    return launch;
}

} // namespace gsuite
