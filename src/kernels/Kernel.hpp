/**
 * @file
 * Base interface of the gSuite core kernels (Table II).
 *
 * Every kernel has two faces:
 *  - execute(): the functional (bit-accurate) semantics, run on the
 *    host CPU; this is what the correctness tests and the wall-clock
 *    profiler measure.
 *  - makeLaunch(): the timing face — a CUDA-style launch descriptor
 *    whose per-warp instruction traces (with real per-lane memory
 *    addresses derived from the operand data) feed the GPU simulator.
 *
 * Engines always call execute() before makeLaunch(), so trace
 * generators may reference the kernel's *output* data as well (needed
 * by SpGEMM, whose output structure is data-dependent).
 */

#ifndef GSUITE_KERNELS_KERNEL_HPP
#define GSUITE_KERNELS_KERNEL_HPP

#include <string>
#include <vector>

#include "simgpu/DeviceAllocator.hpp"
#include "simgpu/KernelLaunch.hpp"

namespace gsuite {

/**
 * The buffers a kernel touches, by host identity. This is the
 * declaration the op-graph IR (src/ir/OpGraph) derives dataflow
 * dependencies from: a node reading a buffer depends on the node
 * that last wrote it. Identity is the address of the host container
 * (DenseMatrix, CsrMatrix, std::vector) — the same key
 * DeviceAllocator maps.
 */
struct KernelIo {
    std::vector<const void *> reads;
    std::vector<const void *> writes;
};

/**
 * One device-mapped span of a kernel operand, sized. `buffer` is the
 * io() container key the span belongs to (a container may map
 * several spans — a CSR maps rowPtr/colIdx/vals separately); `data`
 * and `bytes` are exactly what makeLaunch() passes to
 * DeviceAllocator::map for that span. The memory planner
 * (src/memplan) rebuilds the naive address layout by replaying these
 * declarations in schedule order, so a kernel's ioSpans() MUST list
 * its spans in makeLaunch()'s map order with makeLaunch()'s exact
 * byte sizes — the plan-backed placement mode freezes the allocator
 * and treats any undeclared map() as a contract violation.
 */
struct IoSpan {
    const void *buffer = nullptr; ///< owning io() container key
    const void *data = nullptr;   ///< map key (span base pointer)
    uint64_t bytes = 0;           ///< exact mapped size
};

/** Abstract core kernel. */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** Unique launch name, e.g. "indexSelect_l0". */
    virtual std::string name() const = 0;

    /** Table II kernel class. */
    virtual KernelClass kind() const = 0;

    /** Run the functional semantics on the host. */
    virtual void execute() = 0;

    /**
     * Build the timing launch. Must be called after execute().
     * The kernel object must outlive any use of the returned launch
     * (trace generators reference its operand buffers).
     */
    virtual KernelLaunch makeLaunch(DeviceAllocator &alloc) const = 0;

    /**
     * Declare the buffers execute() reads and writes. The suite's
     * six core kernels all implement this; the default (empty)
     * declaration is the conservative fallback for external custom
     * kernels: OpGraph treats a node with no declared IO as a
     * barrier, ordered after every earlier node and before every
     * later one.
     */
    virtual KernelIo io() const { return {}; }

    /**
     * Declare the device spans makeLaunch() will map, in map order
     * with exact sizes. Valid only after execute() (span sizes may
     * be data-dependent, e.g. SpGEMM's output). The default (empty)
     * declaration marks the kernel as opaque to the memory planner:
     * graphs containing such a node fall back to naive placement.
     */
    virtual std::vector<IoSpan> ioSpans() const { return {}; }
};

/** Threads per CTA used by all 1D-grid gsuite kernels. */
constexpr int kCtaThreads = 256;
/** Warps per CTA at kCtaThreads. */
constexpr int kCtaWarps = kCtaThreads / 32;

/** ceil(a / b) for positive operands. */
constexpr int64_t
ceilDiv(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

} // namespace gsuite

#endif // GSUITE_KERNELS_KERNEL_HPP
