/**
 * @file
 * indexSelect — the MP gather kernel (Table II: "indexes the input
 * along specified dimension by using index entries").
 *
 * output[i][c] = input[index[i]][c] for i in [0, |index|), c in [0, f).
 * The GPU mapping is one thread per output element, so warps see
 * coalesced index/output traffic but data-dependent, irregular input
 * rows — the access pattern the paper's locality observations hinge
 * on.
 */

#ifndef GSUITE_KERNELS_INDEXSELECT_HPP
#define GSUITE_KERNELS_INDEXSELECT_HPP

#include <cstdint>
#include <vector>

#include "kernels/Kernel.hpp"
#include "tensor/DenseMatrix.hpp"

namespace gsuite {

/** The MP gather kernel. */
class IndexSelectKernel : public Kernel
{
  public:
    /**
     * @param label Launch name.
     * @param input Feature rows to gather from [n x f].
     * @param index Row selector (e.g. edge source nodes), length e.
     * @param output Gathered rows [e x f] (resized by execute()).
     */
    IndexSelectKernel(std::string label, const DenseMatrix &input,
                      const std::vector<int64_t> &index,
                      DenseMatrix &output);

    std::string name() const override { return label; }
    KernelClass kind() const override
    {
        return KernelClass::IndexSelect;
    }
    void execute() override;
    KernelLaunch makeLaunch(DeviceAllocator &alloc) const override;
    std::vector<IoSpan> ioSpans() const override;
    KernelIo io() const override
    {
        return {{&input, &index}, {&output}};
    }

  private:
    std::string label;
    const DenseMatrix &input;
    const std::vector<int64_t> &index;
    DenseMatrix &output;
};

} // namespace gsuite

#endif // GSUITE_KERNELS_INDEXSELECT_HPP
