#include "kernels/Spmm.hpp"

#include <algorithm>
#include <array>

#include "sparse/SparseOps.hpp"
#include "util/Logging.hpp"

namespace gsuite {

SpmmKernel::SpmmKernel(std::string label, const CsrMatrix &a,
                       const DenseMatrix &b, DenseMatrix &c)
    : label(std::move(label)), a(a), b(b), c(c)
{
}

void
SpmmKernel::execute()
{
    spmm(a, b, c);
}

KernelLaunch
SpmmKernel::makeLaunch(DeviceAllocator &alloc) const
{
    const int64_t n = a.rows();
    const int64_t f = b.cols();
    const int64_t f_chunks = ceilDiv(std::max<int64_t>(f, 1), 32);
    const int64_t total_warps = n * f_chunks;

    const uint64_t rp_base = alloc.map(
        a.rowPtr.data(), static_cast<uint64_t>(a.rowPtr.size()) * 8);
    const uint64_t ci_base = alloc.map(
        a.colIdx.data(), static_cast<uint64_t>(a.colIdx.size()) * 8);
    const uint64_t va_base =
        a.vals.empty()
            ? ci_base
            : alloc.map(a.vals.data(),
                        static_cast<uint64_t>(a.vals.size()) * 4);
    const uint64_t b_base =
        alloc.map(b.data(), static_cast<uint64_t>(b.size()) * 4);
    const uint64_t c_base =
        alloc.map(c.data(), static_cast<uint64_t>(c.size()) * 4);

    KernelLaunch launch;
    launch.name = label;
    launch.kind = KernelClass::SpMM;
    launch.dims.numCtas = ceilDiv(total_warps, kCtaWarps);
    launch.dims.threadsPerCta = kCtaThreads;
    launch.flopEstimate =
        static_cast<uint64_t>(2) * static_cast<uint64_t>(a.nnz()) *
        static_cast<uint64_t>(f);

    // Streaming generator: the row loop is resumable so a
    // Reddit-scale row materializes one chunk at a time instead of
    // the whole gather sequence at once.
    const CsrMatrix *acsr = &a;
    launch.streamTrace = [=](int64_t cta, int warp) -> WarpTraceStream {
        const int64_t wg = cta * kCtaWarps + warp;
        if (wg >= total_warps) {
            return [](TraceBuilder &tb) {
                tb.exit();
                return true;
            };
        }
        const int64_t row = wg / f_chunks;
        const int64_t chunk = wg % f_chunks;
        const int lanes =
            static_cast<int>(std::min<int64_t>(32, f - chunk * 32));
        const uint32_t mask = maskOfLanes(std::max(lanes, 1));
        const int64_t end = acsr->rowPtr[static_cast<size_t>(row) + 1];

        struct State {
            bool prologueDone = false;
            int64_t j = 0;
            Reg acc = kNoReg;
        };
        State st;
        st.j = acsr->rowPtr[static_cast<size_t>(row)];

        return [=](TraceBuilder &tb) mutable {
            std::array<uint64_t, 32> addrs{};
            if (!st.prologueDone) {
                tb.aluChain(Op::INT, 2, mask);
                // rowPtr[row], rowPtr[row+1]: one sector, scalar load.
                const std::array<uint64_t, 2> rp = {
                    rp_base + static_cast<uint64_t>(row) * 8,
                    rp_base + static_cast<uint64_t>(row + 1) * 8};
                const Reg rrp = tb.load({rp.data(), rp.size()});
                tb.alu(Op::INT, rrp);
                tb.control(mask);
                st.acc = tb.alu(Op::FP32, kNoReg, kNoReg, mask);
                st.prologueDone = true;
            }
            while (st.j < end && !tb.full()) {
                const int64_t j = st.j++;
                // colIdx[j] and vals[j]: warp-uniform scalar loads.
                const std::array<uint64_t, 1> ca = {
                    ci_base + static_cast<uint64_t>(j) * 8};
                const Reg rc = tb.load({ca.data(), 1});
                const std::array<uint64_t, 1> va = {
                    va_base + static_cast<uint64_t>(j) * 4};
                const Reg rv = tb.load({va.data(), 1});
                // Address math from the loaded column.
                const Reg raddr = tb.alu(Op::INT, rc, kNoReg, mask);
                // Gather the B row chunk (coalesced within the row
                // but the row itself is data-dependent).
                const int64_t col =
                    acsr->colIdx[static_cast<size_t>(j)];
                for (int l = 0; l < lanes; ++l) {
                    addrs[static_cast<size_t>(l)] =
                        b_base +
                        static_cast<uint64_t>(col * f + chunk * 32 +
                                              l) *
                            4;
                }
                const Reg rb = tb.load(
                    {addrs.data(),
                     static_cast<size_t>(std::max(lanes, 1))},
                    raddr);
                Reg prod = tb.alu(Op::FP32, rb, rv, mask);
                st.acc = tb.alu(Op::FP32, st.acc, prod, mask);
                tb.control(mask);
            }
            if (st.j < end)
                return false; // suspended; resume at nonzero j

            // Store the output chunk.
            for (int l = 0; l < lanes; ++l) {
                addrs[static_cast<size_t>(l)] =
                    c_base +
                    static_cast<uint64_t>(row * f + chunk * 32 + l) *
                        4;
            }
            tb.store({addrs.data(),
                      static_cast<size_t>(std::max(lanes, 1))},
                     st.acc);
            tb.exit();
            return true;
        };
    };
    // CTA cost for sampled simulation: each warp group walks one
    // row's nonzeros, so the CTA's trace length is the sum of its
    // rows' degrees.
    launch.ctaCostHint = [=](int64_t cta) -> uint64_t {
        uint64_t cost = 1;
        for (int w = 0; w < kCtaWarps; ++w) {
            const int64_t wg = cta * kCtaWarps + w;
            if (wg >= total_warps)
                break;
            const size_t row =
                static_cast<size_t>(wg / f_chunks);
            cost += static_cast<uint64_t>(acsr->rowPtr[row + 1] -
                                          acsr->rowPtr[row]);
        }
        return cost;
    };
    return launch;
}

std::vector<IoSpan>
SpmmKernel::ioSpans() const
{
    // Mirror makeLaunch()'s map calls exactly: order, pointers and
    // byte sizes. Empty vals alias colIdx's base without a map call.
    std::vector<IoSpan> spans;
    spans.push_back({&a, a.rowPtr.data(),
                     static_cast<uint64_t>(a.rowPtr.size()) * 8});
    spans.push_back({&a, a.colIdx.data(),
                     static_cast<uint64_t>(a.colIdx.size()) * 8});
    if (!a.vals.empty())
        spans.push_back({&a, a.vals.data(),
                         static_cast<uint64_t>(a.vals.size()) * 4});
    spans.push_back(
        {&b, b.data(), static_cast<uint64_t>(b.size()) * 4});
    spans.push_back(
        {&c, c.data(), static_cast<uint64_t>(c.size()) * 4});
    return spans;
}

} // namespace gsuite
