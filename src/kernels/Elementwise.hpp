/**
 * @file
 * Elementwise auxiliary kernels: activations, scaled addition and
 * per-row scaling. These are the "other" kernels in the paper's
 * Fig. 4 execution-time distribution — needed by the GNN pipelines
 * (bias/activation, GIN's (1+eps) self term, SAGE's mean divide) but
 * not part of the Table II core set.
 */

#ifndef GSUITE_KERNELS_ELEMENTWISE_HPP
#define GSUITE_KERNELS_ELEMENTWISE_HPP

#include <vector>

#include "kernels/Kernel.hpp"
#include "tensor/DenseMatrix.hpp"

namespace gsuite {

/** The elementwise/auxiliary kernel family. */
class ElementwiseKernel : public Kernel
{
  public:
    /** Operation selector. */
    enum class EwOp {
        Relu,      ///< out = max(in, 0)
        Sigmoid,   ///< out = 1 / (1 + exp(-in))  (SFU-heavy)
        LeakyRelu, ///< out = in > 0 ? in : alpha*in  (GAT scores)
        Exp,       ///< out = exp(in)  (edge softmax numerator)
        Recip,     ///< out = 1 / in   (edge softmax divide)
        AddScaled, ///< out = alpha*inA + beta*inB
        RowScale,  ///< out[r][c] = inA[r][c] * rowVec[r]
        ReluGrad,  ///< out = inA * (inB > 0)  (training backward)
        Mul,       ///< out = inA * inB
        Sub,       ///< out = inA - inB
    };

    /** Unary constructor (Relu/Sigmoid/LeakyRelu/Exp/Recip). */
    ElementwiseKernel(std::string label, EwOp op, const DenseMatrix &in,
                      DenseMatrix &out, float alpha = 0.2f);

    /**
     * Binary constructor (ReluGrad/Mul/Sub). For ReluGrad, @p in_a is
     * the upstream gradient and @p in_b the forward pre-activation
     * whose sign gates it.
     */
    ElementwiseKernel(std::string label, EwOp op,
                      const DenseMatrix &in_a, const DenseMatrix &in_b,
                      DenseMatrix &out);

    /** AddScaled constructor. */
    ElementwiseKernel(std::string label, const DenseMatrix &in_a,
                      const DenseMatrix &in_b, float alpha, float beta,
                      DenseMatrix &out);

    /** RowScale constructor. */
    ElementwiseKernel(std::string label, const DenseMatrix &in,
                      const std::vector<float> &row_vec,
                      DenseMatrix &out);

    std::string name() const override { return label; }
    KernelClass kind() const override
    {
        return KernelClass::Elementwise;
    }
    void execute() override;
    KernelLaunch makeLaunch(DeviceAllocator &alloc) const override;
    std::vector<IoSpan> ioSpans() const override;
    KernelIo io() const override
    {
        KernelIo io{{&inA}, {&out}};
        if (inB)
            io.reads.push_back(inB);
        if (rowVec)
            io.reads.push_back(rowVec);
        return io;
    }

  private:
    std::string label;
    EwOp op;
    const DenseMatrix &inA;
    const DenseMatrix *inB = nullptr;
    const std::vector<float> *rowVec = nullptr;
    float alpha = 1.0f;
    float beta = 1.0f;
    DenseMatrix &out;
};

} // namespace gsuite

#endif // GSUITE_KERNELS_ELEMENTWISE_HPP
