/**
 * @file
 * SpMM — sparse (CSR) x dense multiply, the reduction step of the
 * SpMM computational model (the "SpGEMM/GEMM" kernel pair of Table II
 * as launched with a dense right-hand side).
 *
 * GPU mapping: one warp per (row, 32-wide feature chunk); lanes walk
 * the row's nonzeros together and each lane accumulates one output
 * feature. Hub rows produce long warps (load imbalance) and the B-row
 * gathers are data-dependent — the irregularity the paper measures.
 */

#ifndef GSUITE_KERNELS_SPMM_HPP
#define GSUITE_KERNELS_SPMM_HPP

#include "kernels/Kernel.hpp"
#include "sparse/Csr.hpp"
#include "tensor/DenseMatrix.hpp"

namespace gsuite {

/** The sparse-times-dense core kernel: C = A x B, A in CSR. */
class SpmmKernel : public Kernel
{
  public:
    SpmmKernel(std::string label, const CsrMatrix &a,
               const DenseMatrix &b, DenseMatrix &c);

    std::string name() const override { return label; }
    KernelClass kind() const override { return KernelClass::SpMM; }
    void execute() override;
    KernelLaunch makeLaunch(DeviceAllocator &alloc) const override;
    std::vector<IoSpan> ioSpans() const override;
    KernelIo io() const override { return {{&a, &b}, {&c}}; }

  private:
    std::string label;
    const CsrMatrix &a;
    const DenseMatrix &b;
    DenseMatrix &c;
};

} // namespace gsuite

#endif // GSUITE_KERNELS_SPMM_HPP
