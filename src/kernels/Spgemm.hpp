/**
 * @file
 * SpGEMM — sparse x sparse matrix multiply (Table II: "matrix
 * multiplication of two sparse matrices").
 *
 * Functional semantics use Gustavson's row-wise algorithm; the GPU
 * mapping is one warp per A row, lanes cooperating across the row's
 * nonzeros, each expanding its B row through a hash-accumulator
 * (integer-heavy, divergent — the "sp" kernel profile of Fig. 5).
 */

#ifndef GSUITE_KERNELS_SPGEMM_HPP
#define GSUITE_KERNELS_SPGEMM_HPP

#include "kernels/Kernel.hpp"
#include "sparse/Csr.hpp"

namespace gsuite {

/** The sparse-times-sparse core kernel: C = A x B, all CSR. */
class SpgemmKernel : public Kernel
{
  public:
    SpgemmKernel(std::string label, const CsrMatrix &a,
                 const CsrMatrix &b, CsrMatrix &c);

    std::string name() const override { return label; }
    KernelClass kind() const override { return KernelClass::SpGemm; }
    void execute() override;
    KernelLaunch makeLaunch(DeviceAllocator &alloc) const override;
    std::vector<IoSpan> ioSpans() const override;
    KernelIo io() const override { return {{&a, &b}, {&c}}; }

  private:
    std::string label;
    const CsrMatrix &a;
    const CsrMatrix &b;
    CsrMatrix &c;
};

} // namespace gsuite

#endif // GSUITE_KERNELS_SPGEMM_HPP
