/**
 * @file
 * scatter — the MP reduction kernel (Table II: "reduces given input
 * based-on index vector using entries").
 *
 * output[index[i]][c] (op)= messages[i][c] * edgeScale[i], one thread
 * per message element, using global atomics for the reduction — the
 * source of the synchronization pressure the paper observes for this
 * kernel.
 */

#ifndef GSUITE_KERNELS_SCATTER_HPP
#define GSUITE_KERNELS_SCATTER_HPP

#include <cstdint>
#include <vector>

#include "kernels/Kernel.hpp"
#include "tensor/DenseMatrix.hpp"

namespace gsuite {

/** The MP scatter-reduce kernel. */
class ScatterKernel : public Kernel
{
  public:
    /** Reduction operator. */
    enum class Reduce {
        Sum,
        Max,
    };

    /**
     * @param label Launch name.
     * @param messages Edge messages [e x f].
     * @param index Destination row per message (edge dst), length e.
     * @param output Accumulator [n x f]; the caller chooses n and the
     *        kernel zero-fills it (Sum) or leaves -inf semantics to
     *        relu downstream (Max starts from 0 for GNN use).
     * @param op Reduction operator.
     * @param edge_scale Optional per-edge multiplier (GCN's
     *        1/sqrt(d_u d_v) normalization fused into the scatter, as
     *        in Fig. 2 where scatter consumes nodeDegrees).
     */
    ScatterKernel(std::string label, const DenseMatrix &messages,
                  const std::vector<int64_t> &index, DenseMatrix &output,
                  Reduce op = Reduce::Sum,
                  const std::vector<float> *edge_scale = nullptr);

    /**
     * Variant whose per-edge scale is an [e x 1] matrix produced by
     * an earlier kernel in the same pipeline (GAT's attention
     * coefficients).
     */
    ScatterKernel(std::string label, const DenseMatrix &messages,
                  const std::vector<int64_t> &index, DenseMatrix &output,
                  Reduce op, const DenseMatrix &edge_scale_mat);

    std::string name() const override { return label; }
    KernelClass kind() const override { return KernelClass::Scatter; }
    void execute() override;
    KernelLaunch makeLaunch(DeviceAllocator &alloc) const override;
    std::vector<IoSpan> ioSpans() const override;
    KernelIo io() const override
    {
        KernelIo io{{&messages, &index}, {&output}};
        if (edgeScale)
            io.reads.push_back(edgeScale);
        if (edgeScaleMat)
            io.reads.push_back(edgeScaleMat);
        return io;
    }

  private:
    std::string label;
    const DenseMatrix &messages;
    const std::vector<int64_t> &index;
    DenseMatrix &output;
    Reduce op;
    const std::vector<float> *edgeScale = nullptr;
    const DenseMatrix *edgeScaleMat = nullptr;

    /** Scale factor of edge i (1.0 when unscaled). */
    float scaleOf(int64_t i) const;
    /** True when any per-edge scaling is active. */
    bool scaled() const { return edgeScale || edgeScaleMat; }
};

} // namespace gsuite

#endif // GSUITE_KERNELS_SCATTER_HPP
