#include "kernels/IndexSelect.hpp"

#include <algorithm>
#include <array>

#include "util/Logging.hpp"

namespace gsuite {

IndexSelectKernel::IndexSelectKernel(std::string label,
                                     const DenseMatrix &input,
                                     const std::vector<int64_t> &index,
                                     DenseMatrix &output)
    : label(std::move(label)), input(input), index(index), output(output)
{
}

void
IndexSelectKernel::execute()
{
    const int64_t e = static_cast<int64_t>(index.size());
    const int64_t f = input.cols();
    output.resize(e, f);
    for (int64_t i = 0; i < e; ++i) {
        const int64_t row = index[static_cast<size_t>(i)];
        panicIf(row < 0 || row >= input.rows(),
                "indexSelect row out of range");
        const float *src = input.rowPtr(row);
        float *dst = output.rowPtr(i);
        std::copy(src, src + f, dst);
    }
}

KernelLaunch
IndexSelectKernel::makeLaunch(DeviceAllocator &alloc) const
{
    const int64_t e = static_cast<int64_t>(index.size());
    const int64_t f = input.cols();
    const int64_t total = e * f;

    const uint64_t idx_base =
        alloc.map(index.data(), static_cast<uint64_t>(e) * 8);
    const uint64_t in_base = alloc.map(
        input.data(), static_cast<uint64_t>(input.size()) * 4);
    const uint64_t out_base = alloc.map(
        output.data(), static_cast<uint64_t>(output.size()) * 4);

    KernelLaunch launch;
    launch.name = label;
    launch.kind = KernelClass::IndexSelect;
    launch.dims.numCtas = ceilDiv(total, kCtaThreads);
    launch.dims.threadsPerCta = kCtaThreads;
    launch.bytesEstimate = static_cast<uint64_t>(total) * 8 +
                           static_cast<uint64_t>(e) * 8;

    // Streaming generator: short fixed per-warp sequence, one chunk.
    const std::vector<int64_t> *idx = &index;
    launch.streamTrace = [=](int64_t cta, int warp) -> WarpTraceStream {
        return [=](TraceBuilder &b) {
        const int64_t t0 =
            (cta * kCtaWarps + warp) * static_cast<int64_t>(32);
        const int lanes =
            static_cast<int>(std::clamp<int64_t>(total - t0, 0, 32));
        if (lanes == 0) {
            b.exit();
            return true;
        }
        const uint32_t mask = maskOfLanes(lanes);

        // Thread-id / row / column arithmetic.
        b.aluChain(Op::INT, 3, mask);

        // Load index[i] (8-byte entries, coalesced for f >= 32 since
        // consecutive threads share a row; strided otherwise).
        std::array<uint64_t, 32> a{};
        for (int l = 0; l < lanes; ++l) {
            const int64_t t = t0 + l;
            a[static_cast<size_t>(l)] =
                idx_base + static_cast<uint64_t>(t / f) * 8;
        }
        const Reg ridx = b.load({a.data(), static_cast<size_t>(lanes)});

        // Address computation from the loaded index.
        const Reg raddr = b.alu(Op::INT, ridx, kNoReg, mask);

        // The irregular gather: input[index[i]][c].
        for (int l = 0; l < lanes; ++l) {
            const int64_t t = t0 + l;
            const int64_t row = (*idx)[static_cast<size_t>(t / f)];
            a[static_cast<size_t>(l)] =
                in_base +
                static_cast<uint64_t>(row * f + t % f) * 4;
        }
        const Reg rval =
            b.load({a.data(), static_cast<size_t>(lanes)}, raddr);

        // Coalesced output store.
        for (int l = 0; l < lanes; ++l) {
            a[static_cast<size_t>(l)] =
                out_base + static_cast<uint64_t>(t0 + l) * 4;
        }
        b.store({a.data(), static_cast<size_t>(lanes)}, rval);
        b.exit();
        return true;
        };
    };
    return launch;
}

std::vector<IoSpan>
IndexSelectKernel::ioSpans() const
{
    // Mirror makeLaunch()'s map calls exactly — note the index is
    // mapped FIRST, unlike io()'s read-list order.
    const uint64_t e = static_cast<uint64_t>(index.size());
    return {{&index, index.data(), e * 8},
            {&input, input.data(),
             static_cast<uint64_t>(input.size()) * 4},
            {&output, output.data(),
             static_cast<uint64_t>(output.size()) * 4}};
}

} // namespace gsuite
