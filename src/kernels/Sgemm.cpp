#include "kernels/Sgemm.hpp"

#include <algorithm>
#include <array>

#include "tensor/Ops.hpp"
#include "util/Logging.hpp"

namespace gsuite {

SgemmKernel::SgemmKernel(std::string label, const DenseMatrix &a,
                         const DenseMatrix &b, DenseMatrix &c,
                         bool trans_a, bool trans_b)
    : label(std::move(label)), a(a), b(b), c(c), transA(trans_a),
      transB(trans_b)
{
}

void
SgemmKernel::execute()
{
    if (!transA && !transB) {
        gemm(a, b, c);
        return;
    }
    const int64_t m = dimM();
    const int64_t k = dimK();
    const int64_t n = dimN();
    if (dimK() != (transB ? b.cols() : b.rows()))
        fatal("sgemm inner dimension mismatch under transposition");
    c.resize(m, n);
    // Generic transposed path: k-outer loop keeps the inner access
    // streaming over C rows.
    for (int64_t kk = 0; kk < k; ++kk) {
        for (int64_t i = 0; i < m; ++i) {
            const float av = transA ? a.at(kk, i) : a.at(i, kk);
            if (av == 0.0f)
                continue;
            float *crow = c.rowPtr(i);
            if (transB) {
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += av * b.at(j, kk);
            } else {
                const float *brow = b.rowPtr(kk);
                for (int64_t j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    }
}

KernelLaunch
SgemmKernel::makeLaunch(DeviceAllocator &alloc) const
{
    const int64_t m = dimM();
    const int64_t k = dimK();
    const int64_t n = dimN();
    const int64_t a_cols = a.cols();
    const int64_t b_cols = b.cols();

    const uint64_t a_base =
        alloc.map(a.data(), static_cast<uint64_t>(a.size()) * 4);
    const uint64_t b_base =
        alloc.map(b.data(), static_cast<uint64_t>(b.size()) * 4);
    const uint64_t c_base =
        alloc.map(c.data(), static_cast<uint64_t>(c.size()) * 4);

    const int64_t cta_x = ceilDiv(n, kTile); // tiles along columns
    const int64_t cta_y = ceilDiv(m, kTile); // tiles along rows
    const int64_t k_tiles = ceilDiv(std::max<int64_t>(k, 1), kTile);

    KernelLaunch launch;
    launch.name = label;
    launch.kind = KernelClass::Sgemm;
    launch.dims.numCtas = cta_x * cta_y;
    launch.dims.threadsPerCta = kTile * kTile; // 256 = 8 warps
    launch.flopEstimate = static_cast<uint64_t>(2) *
                          static_cast<uint64_t>(m) *
                          static_cast<uint64_t>(n) *
                          static_cast<uint64_t>(k);
    launch.bytesEstimate =
        static_cast<uint64_t>(m * k + k * n + m * n) * 4;

    // Storage offsets under optional transposition: transposed
    // operands produce the strided (column-wise) access pattern a
    // real transposed-GEMM kernel would issue.
    const bool ta = transA;
    const bool tb = transB;
    auto a_off = [ta, a_cols](int64_t row, int64_t kk) {
        return ta ? kk * a_cols + row : row * a_cols + kk;
    };
    auto b_off = [tb, b_cols](int64_t kk, int64_t col) {
        return tb ? col * b_cols + kk : kk * b_cols + col;
    };

    // Streaming generator: resumable over k-tiles, so deep GEMMs
    // keep O(chunk) resident trace instead of O(k) tile bodies.
    launch.streamTrace = [=](int64_t cta, int warp) -> WarpTraceStream {
        const int64_t by = cta / cta_x;
        const int64_t bx = cta % cta_x;

        struct State {
            bool prologueDone = false;
            int64_t t = 0;
            Reg acc = kNoReg;
        };
        State st;

        return [=](TraceBuilder &b2) mutable {
        // Warp covers two consecutive tile rows: lanes 0..15 row 2w,
        // lanes 16..31 row 2w+1.
        std::array<uint64_t, 32> addrs{};

        if (!st.prologueDone) {
            st.acc = b2.alu(Op::FP32); // accumulator init
            st.prologueDone = true;
        }
        Reg acc = st.acc;
        while (st.t < k_tiles && !b2.full()) {
            const int64_t t = st.t++;
            // Load the A sub-tile: op(A)[by*16 + ty][t*16 + tx].
            int cnt = 0;
            for (int l = 0; l < 32; ++l) {
                const int64_t ty = 2 * warp + l / kTile;
                const int64_t tx = l % kTile;
                const int64_t row = by * kTile + ty;
                const int64_t col = t * kTile + tx;
                if (row < m && col < k)
                    addrs[static_cast<size_t>(cnt++)] =
                        a_base +
                        static_cast<uint64_t>(a_off(row, col)) * 4;
            }
            if (cnt > 0) {
                const Reg ra =
                    b2.load({addrs.data(), static_cast<size_t>(cnt)});
                b2.sharedStore(ra);
            }
            // Load the B sub-tile: op(B)[t*16 + ty][bx*16 + tx].
            cnt = 0;
            for (int l = 0; l < 32; ++l) {
                const int64_t ty = 2 * warp + l / kTile;
                const int64_t tx = l % kTile;
                const int64_t row = t * kTile + ty;
                const int64_t col = bx * kTile + tx;
                if (row < k && col < n)
                    addrs[static_cast<size_t>(cnt++)] =
                        b_base +
                        static_cast<uint64_t>(b_off(row, col)) * 4;
            }
            if (cnt > 0) {
                const Reg rb =
                    b2.load({addrs.data(), static_cast<size_t>(cnt)});
                b2.sharedStore(rb);
            }
            b2.barrier();
            // Inner product over the 16-wide tile with register
            // tiling: operands are staged from shared memory into
            // registers in groups of four, so the steady state is
            // FMA-dominated like a real SASS GEMM.
            Reg staged = kNoReg;
            for (int kk = 0; kk < kTile; ++kk) {
                if (kk % 4 == 0)
                    staged = b2.sharedLoad();
                acc = b2.alu(Op::FP32, staged, acc);
            }
            b2.barrier();
            b2.control();
        }
        st.acc = acc;
        if (st.t < k_tiles)
            return false; // suspended; resume at tile st.t

        // Epilogue: store the C element of each thread.
        int cnt = 0;
        for (int l = 0; l < 32; ++l) {
            const int64_t ty = 2 * warp + l / kTile;
            const int64_t tx = l % kTile;
            const int64_t row = by * kTile + ty;
            const int64_t col = bx * kTile + tx;
            if (row < m && col < n)
                addrs[static_cast<size_t>(cnt++)] =
                    c_base + static_cast<uint64_t>(row * n + col) * 4;
        }
        if (cnt > 0)
            b2.store({addrs.data(), static_cast<size_t>(cnt)}, acc);
        b2.exit();
        return true;
        };
    };
    return launch;
}

std::vector<IoSpan>
SgemmKernel::ioSpans() const
{
    // Mirror makeLaunch()'s map calls exactly: a, b, c, 4B floats.
    return {{&a, a.data(), static_cast<uint64_t>(a.size()) * 4},
            {&b, b.data(), static_cast<uint64_t>(b.size()) * 4},
            {&c, c.data(), static_cast<uint64_t>(c.size()) * 4}};
}

} // namespace gsuite
