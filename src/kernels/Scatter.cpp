#include "kernels/Scatter.hpp"

#include <algorithm>
#include <array>

#include "util/Logging.hpp"

namespace gsuite {

ScatterKernel::ScatterKernel(std::string label,
                             const DenseMatrix &messages,
                             const std::vector<int64_t> &index,
                             DenseMatrix &output, Reduce op,
                             const std::vector<float> *edge_scale)
    : label(std::move(label)), messages(messages), index(index),
      output(output), op(op), edgeScale(edge_scale)
{
}

ScatterKernel::ScatterKernel(std::string label,
                             const DenseMatrix &messages,
                             const std::vector<int64_t> &index,
                             DenseMatrix &output, Reduce op,
                             const DenseMatrix &edge_scale_mat)
    : label(std::move(label)), messages(messages), index(index),
      output(output), op(op), edgeScaleMat(&edge_scale_mat)
{
}

float
ScatterKernel::scaleOf(int64_t i) const
{
    if (edgeScale)
        return (*edgeScale)[static_cast<size_t>(i)];
    if (edgeScaleMat)
        return edgeScaleMat->data()[i];
    return 1.0f;
}

void
ScatterKernel::execute()
{
    const int64_t e = static_cast<int64_t>(index.size());
    const int64_t f = messages.cols();
    panicIf(messages.rows() != e, "scatter message/index mismatch");
    panicIf(output.cols() != f, "scatter output width mismatch");
    panicIf(edgeScale && static_cast<int64_t>(edgeScale->size()) != e,
            "scatter edge-scale length mismatch");
    panicIf(edgeScaleMat && edgeScaleMat->size() != e,
            "scatter edge-scale matrix size mismatch");
    output.setZero();
    for (int64_t i = 0; i < e; ++i) {
        const int64_t row = index[static_cast<size_t>(i)];
        panicIf(row < 0 || row >= output.rows(),
                "scatter destination out of range");
        const float scale = scaleOf(i);
        const float *src = messages.rowPtr(i);
        float *dst = output.rowPtr(row);
        if (op == Reduce::Sum) {
            for (int64_t c = 0; c < f; ++c)
                dst[c] += src[c] * scale;
        } else {
            for (int64_t c = 0; c < f; ++c)
                dst[c] = std::max(dst[c], src[c] * scale);
        }
    }
}

KernelLaunch
ScatterKernel::makeLaunch(DeviceAllocator &alloc) const
{
    const int64_t e = static_cast<int64_t>(index.size());
    const int64_t f = messages.cols();
    const int64_t total = e * f;

    const uint64_t idx_base =
        alloc.map(index.data(), static_cast<uint64_t>(e) * 8);
    const uint64_t msg_base = alloc.map(
        messages.data(), static_cast<uint64_t>(messages.size()) * 4);
    const uint64_t out_base = alloc.map(
        output.data(), static_cast<uint64_t>(output.size()) * 4);
    uint64_t scale_base = 0;
    if (edgeScale)
        scale_base = alloc.map(edgeScale->data(),
                               static_cast<uint64_t>(e) * 4);
    else if (edgeScaleMat)
        scale_base = alloc.map(edgeScaleMat->data(),
                               static_cast<uint64_t>(e) * 4);

    KernelLaunch launch;
    launch.name = label;
    launch.kind = KernelClass::Scatter;
    launch.dims.numCtas = ceilDiv(total, kCtaThreads);
    launch.dims.threadsPerCta = kCtaThreads;
    launch.bytesEstimate = static_cast<uint64_t>(total) * 8;

    // Streaming generator: a scatter warp's trace is a short fixed
    // sequence, so the whole warp fits one chunk (single-call
    // stream).
    const std::vector<int64_t> *idx = &index;
    const bool scaled = this->scaled();
    launch.streamTrace = [=](int64_t cta, int warp) -> WarpTraceStream {
        return [=](TraceBuilder &b) {
        const int64_t t0 =
            (cta * kCtaWarps + warp) * static_cast<int64_t>(32);
        const int lanes =
            static_cast<int>(std::clamp<int64_t>(total - t0, 0, 32));
        if (lanes == 0) {
            b.exit();
            return true;
        }
        const uint32_t mask = maskOfLanes(lanes);

        b.aluChain(Op::INT, 3, mask);

        std::array<uint64_t, 32> a{};
        // Load destination index.
        for (int l = 0; l < lanes; ++l) {
            a[static_cast<size_t>(l)] =
                idx_base + static_cast<uint64_t>((t0 + l) / f) * 8;
        }
        const Reg ridx = b.load({a.data(), static_cast<size_t>(lanes)});

        // Load the message value (coalesced).
        for (int l = 0; l < lanes; ++l) {
            a[static_cast<size_t>(l)] =
                msg_base + static_cast<uint64_t>(t0 + l) * 4;
        }
        Reg rval = b.load({a.data(), static_cast<size_t>(lanes)});

        if (scaled) {
            for (int l = 0; l < lanes; ++l) {
                a[static_cast<size_t>(l)] =
                    scale_base +
                    static_cast<uint64_t>((t0 + l) / f) * 4;
            }
            const Reg rscale =
                b.load({a.data(), static_cast<size_t>(lanes)});
            rval = b.alu(Op::FP32, rval, rscale, mask);
        }

        // Address from the loaded index, then the atomic reduction.
        const Reg raddr = b.alu(Op::INT, ridx, kNoReg, mask);
        (void)raddr;
        for (int l = 0; l < lanes; ++l) {
            const int64_t t = t0 + l;
            const int64_t row = (*idx)[static_cast<size_t>(t / f)];
            a[static_cast<size_t>(l)] =
                out_base + static_cast<uint64_t>(row * f + t % f) * 4;
        }
        b.atomic({a.data(), static_cast<size_t>(lanes)}, rval);
        b.exit();
        return true;
        };
    };
    return launch;
}

std::vector<IoSpan>
ScatterKernel::ioSpans() const
{
    // Mirror makeLaunch()'s map calls exactly: index, messages,
    // output, then the optional per-edge scale operand.
    const uint64_t e = static_cast<uint64_t>(index.size());
    std::vector<IoSpan> spans{
        {&index, index.data(), e * 8},
        {&messages, messages.data(),
         static_cast<uint64_t>(messages.size()) * 4},
        {&output, output.data(),
         static_cast<uint64_t>(output.size()) * 4}};
    if (edgeScale)
        spans.push_back({edgeScale, edgeScale->data(), e * 4});
    else if (edgeScaleMat)
        spans.push_back({edgeScaleMat, edgeScaleMat->data(), e * 4});
    return spans;
}

} // namespace gsuite
