/**
 * @file
 * sgemm — dense GEMM, the cuBLAS-style linear/combination kernel
 * (Table II: "generalized matrix multiplication of two given
 * matrices").
 *
 * The GPU mapping is the classic 16x16 shared-memory-tiled GEMM: each
 * CTA computes a 16x16 output tile, double-barriered per K-tile, so
 * the trace is FP32-dominated with barrier synchronization — exactly
 * the sgemm profile in the paper's Figs. 5 and 6.
 */

#ifndef GSUITE_KERNELS_SGEMM_HPP
#define GSUITE_KERNELS_SGEMM_HPP

#include "kernels/Kernel.hpp"
#include "tensor/DenseMatrix.hpp"

namespace gsuite {

/**
 * The dense GEMM core kernel: C = op(A) x op(B), with optional
 * operand transposition (cublasSgemm's transa/transb) — the backward
 * passes of the training extension need A^T x B and A x B^T.
 */
class SgemmKernel : public Kernel
{
  public:
    SgemmKernel(std::string label, const DenseMatrix &a,
                const DenseMatrix &b, DenseMatrix &c,
                bool trans_a = false, bool trans_b = false);

    std::string name() const override { return label; }
    KernelClass kind() const override { return KernelClass::Sgemm; }
    void execute() override;
    KernelLaunch makeLaunch(DeviceAllocator &alloc) const override;
    std::vector<IoSpan> ioSpans() const override;
    KernelIo io() const override { return {{&a, &b}, {&c}}; }

    /** Output tile edge (threads are kTile x kTile per CTA). */
    static constexpr int kTile = 16;

  private:
    std::string label;
    const DenseMatrix &a;
    const DenseMatrix &b;
    DenseMatrix &c;
    bool transA;
    bool transB;

    /** Effective (post-transpose) dimensions. */
    int64_t dimM() const { return transA ? a.cols() : a.rows(); }
    int64_t dimK() const { return transA ? a.rows() : a.cols(); }
    int64_t dimN() const { return transB ? b.rows() : b.cols(); }
};

} // namespace gsuite

#endif // GSUITE_KERNELS_SGEMM_HPP
