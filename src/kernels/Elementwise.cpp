#include "kernels/Elementwise.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "tensor/Ops.hpp"
#include "util/Logging.hpp"

namespace gsuite {

ElementwiseKernel::ElementwiseKernel(std::string label, EwOp op,
                                     const DenseMatrix &in,
                                     DenseMatrix &out, float alpha)
    : label(std::move(label)), op(op), inA(in), alpha(alpha), out(out)
{
    panicIf(op != EwOp::Relu && op != EwOp::Sigmoid &&
                op != EwOp::LeakyRelu && op != EwOp::Exp &&
                op != EwOp::Recip,
            "unary constructor used with a non-unary op");
}

ElementwiseKernel::ElementwiseKernel(std::string label, EwOp op,
                                     const DenseMatrix &in_a,
                                     const DenseMatrix &in_b,
                                     DenseMatrix &out)
    : label(std::move(label)), op(op), inA(in_a), inB(&in_b), out(out)
{
    panicIf(op != EwOp::ReluGrad && op != EwOp::Mul && op != EwOp::Sub,
            "binary constructor used with a non-binary op");
}

ElementwiseKernel::ElementwiseKernel(std::string label,
                                     const DenseMatrix &in_a,
                                     const DenseMatrix &in_b,
                                     float alpha, float beta,
                                     DenseMatrix &out)
    : label(std::move(label)), op(EwOp::AddScaled), inA(in_a),
      inB(&in_b), alpha(alpha), beta(beta), out(out)
{
}

ElementwiseKernel::ElementwiseKernel(std::string label,
                                     const DenseMatrix &in,
                                     const std::vector<float> &row_vec,
                                     DenseMatrix &out)
    : label(std::move(label)), op(EwOp::RowScale), inA(in),
      rowVec(&row_vec), out(out)
{
}

void
ElementwiseKernel::execute()
{
    switch (op) {
      case EwOp::Relu:
        relu(inA, out);
        break;
      case EwOp::Sigmoid:
        sigmoid(inA, out);
        break;
      case EwOp::AddScaled:
        addScaled(inA, *inB, alpha, beta, out);
        break;
      case EwOp::RowScale: {
        if (&out != &inA)
            out = inA;
        scaleRows(out, *rowVec);
        break;
      }
      case EwOp::LeakyRelu: {
        if (&out != &inA)
            out.resize(inA.rows(), inA.cols());
        const int64_t total = inA.size();
        const float *x = inA.data();
        float *o = out.data();
        for (int64_t i = 0; i < total; ++i)
            o[i] = x[i] > 0.0f ? x[i] : alpha * x[i];
        break;
      }
      case EwOp::Exp: {
        if (&out != &inA)
            out.resize(inA.rows(), inA.cols());
        const int64_t total = inA.size();
        const float *x = inA.data();
        float *o = out.data();
        for (int64_t i = 0; i < total; ++i)
            o[i] = std::exp(x[i]);
        break;
      }
      case EwOp::Recip: {
        if (&out != &inA)
            out.resize(inA.rows(), inA.cols());
        const int64_t total = inA.size();
        const float *x = inA.data();
        float *o = out.data();
        for (int64_t i = 0; i < total; ++i)
            o[i] = 1.0f / x[i];
        break;
      }
      case EwOp::ReluGrad:
      case EwOp::Mul:
      case EwOp::Sub: {
        if (inA.rows() != inB->rows() || inA.cols() != inB->cols())
            fatal("binary elementwise shape mismatch");
        out.resize(inA.rows(), inA.cols());
        const int64_t total = inA.size();
        const float *p = inA.data();
        const float *q = inB->data();
        float *o = out.data();
        if (op == EwOp::ReluGrad) {
            for (int64_t i = 0; i < total; ++i)
                o[i] = q[i] > 0.0f ? p[i] : 0.0f;
        } else if (op == EwOp::Mul) {
            for (int64_t i = 0; i < total; ++i)
                o[i] = p[i] * q[i];
        } else {
            for (int64_t i = 0; i < total; ++i)
                o[i] = p[i] - q[i];
        }
        break;
      }
    }
}

KernelLaunch
ElementwiseKernel::makeLaunch(DeviceAllocator &alloc) const
{
    const int64_t f = inA.cols();
    const int64_t total = inA.size();

    const uint64_t in_base =
        alloc.map(inA.data(), static_cast<uint64_t>(inA.size()) * 4);
    const uint64_t in2_base =
        inB ? alloc.map(inB->data(),
                        static_cast<uint64_t>(inB->size()) * 4)
            : 0;
    const uint64_t vec_base =
        rowVec ? alloc.map(rowVec->data(),
                           static_cast<uint64_t>(rowVec->size()) * 4)
               : 0;
    const uint64_t out_base =
        alloc.map(out.data(), static_cast<uint64_t>(out.size()) * 4);

    KernelLaunch launch;
    launch.name = label;
    launch.kind = KernelClass::Elementwise;
    launch.dims.numCtas = ceilDiv(std::max<int64_t>(total, 1),
                                  kCtaThreads);
    launch.dims.threadsPerCta = kCtaThreads;
    launch.bytesEstimate = static_cast<uint64_t>(total) * 8;

    // Streaming generator: short fixed per-warp sequence, one chunk.
    const EwOp kind_op = op;
    launch.streamTrace = [=](int64_t cta, int warp) -> WarpTraceStream {
        return [=](TraceBuilder &b) {
        const int64_t t0 =
            (cta * kCtaWarps + warp) * static_cast<int64_t>(32);
        const int lanes =
            static_cast<int>(std::clamp<int64_t>(total - t0, 0, 32));
        if (lanes == 0) {
            b.exit();
            return true;
        }
        const uint32_t mask = maskOfLanes(lanes);
        b.aluChain(Op::INT, 2, mask);

        std::array<uint64_t, 32> a{};
        for (int l = 0; l < lanes; ++l)
            a[static_cast<size_t>(l)] =
                in_base + static_cast<uint64_t>(t0 + l) * 4;
        Reg rv = b.load({a.data(), static_cast<size_t>(lanes)});

        switch (kind_op) {
          case EwOp::Relu:
          case EwOp::LeakyRelu:
            rv = b.alu(Op::FP32, rv, kNoReg, mask);
            break;
          case EwOp::Sigmoid: {
            const Reg re = b.alu(Op::SFU, rv, kNoReg, mask);
            rv = b.alu(Op::FP32, re, kNoReg, mask);
            break;
          }
          case EwOp::Exp:
          case EwOp::Recip:
            rv = b.alu(Op::SFU, rv, kNoReg, mask);
            break;
          case EwOp::AddScaled:
          case EwOp::ReluGrad:
          case EwOp::Mul:
          case EwOp::Sub: {
            for (int l = 0; l < lanes; ++l)
                a[static_cast<size_t>(l)] =
                    in2_base + static_cast<uint64_t>(t0 + l) * 4;
            const Reg r2 =
                b.load({a.data(), static_cast<size_t>(lanes)});
            const Reg s1 = b.alu(Op::FP32, rv, kNoReg, mask);
            rv = b.alu(Op::FP32, s1, r2, mask);
            break;
          }
          case EwOp::RowScale: {
            for (int l = 0; l < lanes; ++l)
                a[static_cast<size_t>(l)] =
                    vec_base +
                    static_cast<uint64_t>((t0 + l) / f) * 4;
            const Reg rs =
                b.load({a.data(), static_cast<size_t>(lanes)});
            rv = b.alu(Op::FP32, rv, rs, mask);
            break;
          }
        }

        for (int l = 0; l < lanes; ++l)
            a[static_cast<size_t>(l)] =
                out_base + static_cast<uint64_t>(t0 + l) * 4;
        b.store({a.data(), static_cast<size_t>(lanes)}, rv);
        b.exit();
        return true;
        };
    };
    return launch;
}

std::vector<IoSpan>
ElementwiseKernel::ioSpans() const
{
    // Mirror makeLaunch()'s map calls exactly: inA, optional inB and
    // rowVec, then out.
    std::vector<IoSpan> spans;
    spans.push_back(
        {&inA, inA.data(), static_cast<uint64_t>(inA.size()) * 4});
    if (inB)
        spans.push_back({inB, inB->data(),
                         static_cast<uint64_t>(inB->size()) * 4});
    if (rowVec)
        spans.push_back(
            {rowVec, rowVec->data(),
             static_cast<uint64_t>(rowVec->size()) * 4});
    spans.push_back(
        {&out, out.data(), static_cast<uint64_t>(out.size()) * 4});
    return spans;
}

} // namespace gsuite
