#include "engine/ExecutionEngine.hpp"

#include <algorithm>
#include <exception>

#include "memplan/MemPlan.hpp"
#include "obs/GraphTrace.hpp"
#include "obs/TraceSink.hpp"
#include "util/Logging.hpp"
#include "util/Timer.hpp"

namespace gsuite {

double
ExecutionEngine::totalWallUs() const
{
    double total = 0.0;
    for (const auto &r : records)
        total += r.wallUs;
    return total;
}

void
ExecutionEngine::runKernel(Kernel &kernel,
                           DeviceAllocator &kernelAlloc)
{
    KernelRecord rec;
    rec.name = kernel.name();
    rec.kind = kernel.kind();

    Timer t;
    kernel.execute();
    rec.wallUs = t.elapsedUs();

    records.push_back(std::move(rec));
    measureKernel(records.size() - 1, kernel, kernelAlloc);
}

void
ExecutionEngine::executeLevels(const OpGraph &graph,
                               size_t firstRecord)
{
    const size_t n = graph.numNodes();
    records.resize(firstRecord + n);
    for (size_t i = 0; i < n; ++i) {
        records[firstRecord + i].name = graph.node(i).kernel->name();
        records[firstRecord + i].kind = graph.node(i).kernel->kind();
    }

    // Any dependency edge strictly increases level, so nodes of one
    // level are pairwise independent — including WAR/WAW hazards,
    // which io()-derived edges cover. Plan-backed placement makes
    // their addresses order-independent too, so the level is safe to
    // execute concurrently.
    std::vector<std::vector<size_t>> byLevel(graph.numLevels());
    for (const OpNode &nd : graph.nodes())
        byLevel[static_cast<size_t>(nd.level)].push_back(nd.index);
    size_t width = 0;
    for (const auto &level : byLevel)
        width = std::max(width, level.size());

    int lanes =
        planThreads > 0 ? planThreads : ThreadPool::defaultLanes();
    lanes = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(std::max(lanes, 1)), width));
    if (lanes > 1 && (!execPool || execPool->lanes() != lanes))
        execPool = std::make_unique<ThreadPool>(lanes);

    for (const auto &level : byLevel) {
        // Fault hooks fire serially in schedule order so injected
        // failures are deterministic regardless of lane count.
        if (faultHook)
            for (size_t i : level)
                faultHook(i, *graph.node(i).kernel);
        if (level.size() == 1 || lanes <= 1) {
            for (size_t i : level) {
                Timer t;
                graph.node(i).kernel->execute();
                records[firstRecord + i].wallUs = t.elapsedUs();
            }
            continue;
        }
        // Workers must not unwind; capture and rethrow the lowest
        // schedule index so failures are lane-schedule-independent.
        std::vector<std::exception_ptr> errors(level.size());
        execPool->parallelFor(
            level.size(), [&](size_t k, int) {
                try {
                    Timer t;
                    graph.node(level[k]).kernel->execute();
                    records[firstRecord + level[k]].wallUs =
                        t.elapsedUs();
                } catch (...) {
                    errors[k] = std::current_exception();
                }
            });
        for (std::exception_ptr &e : errors)
            if (e)
                std::rethrow_exception(e);
    }
}

void
ExecutionEngine::run(const OpGraph &graph)
{
    graph.validate();
    const size_t firstRecord = records.size();

    // Merged graphs: each part gets its own device address space so
    // its launches see exactly the addresses a standalone run of
    // that pipeline would (launch simulations start from a flushed
    // device, so cross-part address relationships never matter).
    // Plain pipeline graphs keep the engine's shared allocator —
    // byte-identical behavior to the serial per-kernel path.
    std::vector<std::unique_ptr<DeviceAllocator>> partAllocs;
    if (graph.numParts() > 1)
        for (size_t p = 0; p < graph.numParts(); ++p)
            partAllocs.push_back(
                std::make_unique<DeviceAllocator>());
    const auto allocFor = [&](const OpNode &n) -> DeviceAllocator & {
        return partAllocs.empty()
                   ? alloc
                   : *partAllocs[static_cast<size_t>(n.part)];
    };

    MemPlan plan;
    bool planned = false;
    if (planMode) {
        try {
            // Phase A: level-parallel functional execution — legal
            // before any launch exists because plan-backed placement
            // decouples addresses from execution order.
            executeLevels(graph, firstRecord);

            // Phase B: plan from the (now-sized) span declarations.
            plan = MemPlan::build(graph);
            planned = plan.fullSpanCoverage();
            if (!planned && graph.numNodes() > 0)
                warn("mem-plan: graph has nodes without ioSpans() "
                     "declarations; falling back to naive "
                     "on-demand placement");

            // Phase C: freeze the canonical layout, then build
            // launches and measure in schedule order (the timeline
            // order is part of the deterministic contract).
            if (planned) {
                if (partAllocs.empty())
                    plan.bindAllocator(alloc, 0);
                else
                    for (size_t p = 0; p < partAllocs.size(); ++p)
                        plan.bindAllocator(*partAllocs[p], p);
            }
            size_t nodeIndex = 0;
            for (const OpNode &n : graph.nodes()) {
                measureKernel(firstRecord + nodeIndex, *n.kernel,
                              allocFor(n));
                ++nodeIndex;
            }
        } catch (...) {
            alloc.thaw();
            try {
                sync();
            } catch (...) {
            }
            throw;
        }
        alloc.thaw();
    } else {
        // Naive mode: functional execution, launch construction and
        // on-demand address assignment interleave in the
        // deterministic schedule order; only the deferred timing
        // simulations overlap, joined by sync().
        size_t nodeIndex = 0;
        for (const OpNode &n : graph.nodes()) {
            try {
                if (faultHook)
                    faultHook(nodeIndex, *n.kernel);
                runKernel(*n.kernel, allocFor(n));
            } catch (...) {
                // Deferred simulations reference operand buffers the
                // caller may destroy while unwinding; drain them
                // before propagating the node's failure. A secondary
                // sync failure must not mask the original error.
                try {
                    sync();
                } catch (...) {
                }
                throw;
            }
            ++nodeIndex;
        }
        // Plan post-hoc for reporting: peaks are a pure function of
        // the graph, so naive runs report the same numbers a
        // plan-backed run would.
        plan = MemPlan::build(graph);
    }
    sync();

    // Stamp the per-node naive placement high-water into the sim
    // stats. Derived from the plan's canonical replay — not from the
    // live allocator — so it is identical across runs on a warm
    // engine and across placement modes.
    if (plan.fullSpanCoverage())
        for (size_t i = 0; i < graph.numNodes(); ++i) {
            KernelRecord &rec = records[firstRecord + i];
            if (rec.hasSim)
                rec.sim.deviceBytesPeak =
                    plan.nodeNaiveHighWater()[i];
        }

    GraphRunReport report;
    report.nodes = graph.numNodes();
    report.edges = graph.numEdges();
    report.levels = graph.numLevels();
    report.parts = graph.numParts();
    report.lanes = std::max(1, concurrentLaneCount());
    {
        std::vector<size_t> widths(graph.numLevels(), 0);
        for (const OpNode &n : graph.nodes())
            report.maxLevelWidth = std::max(
                report.maxLevelWidth,
                ++widths[static_cast<size_t>(n.level)]);
    }
    report.planned = planned;
    report.memPeakPlannedBytes = plan.peakBytes();
    report.memPeakNaiveBytes = plan.naiveBytes();
    std::vector<uint64_t> costs;
    costs.reserve(graph.numNodes());
    report.hasSim = graph.numNodes() > 0;
    for (size_t i = 0; i < graph.numNodes(); ++i) {
        const KernelRecord &rec = records.at(firstRecord + i);
        report.hasSim = report.hasSim && rec.hasSim;
        costs.push_back(rec.hasSim ? rec.sim.cycles : 0);
    }
    if (report.hasSim) {
        report.serialCycles = graph.serialCost(costs);
        report.criticalPathCycles = graph.criticalPathCost(costs);
        report.makespanCycles =
            graph.makespan(costs, report.lanes);
    }
    graphReport = report;

    // Observation only — emitted from the deterministic schedule
    // replay and the already-final records, after every counter
    // above is computed.
    if (trace && trace->enabled())
        emitGraphTrace(*trace, graph, plan, records, firstRecord,
                       report.lanes);
}

FunctionalEngine::FunctionalEngine(Options opts) : opts(opts)
{
}

void
FunctionalEngine::measureKernel(size_t recordIndex, Kernel &kernel,
                                DeviceAllocator &kernelAlloc)
{
    if (!opts.profileCaches)
        return;
    const KernelLaunch launch = kernel.makeLaunch(kernelAlloc);
    HwProfiler prof(opts.hwConfig);
    records[recordIndex].hw = prof.profile(launch);
    records[recordIndex].hasHw = true;
}

SimEngine::SimEngine(Options opts_in)
    : opts(std::move(opts_in)), sim(opts.gpu)
{
}

int
SimEngine::effectiveParallel() const
{
    if (opts.parallelLaunches > 0)
        return opts.parallelLaunches;
    return std::min(4, ThreadPool::defaultLanes());
}

void
SimEngine::applySmSampling(SimOptions &runOpts) const
{
    if (!trace || !trace->enabled(TraceSm))
        return;
    runOpts.smSampleEnabled = true;
    runOpts.smSampleCore = std::clamp(trace->samplingCore(), 0,
                                      opts.gpu.numSms - 1);
}

void
SimEngine::measureKernel(size_t recordIndex, Kernel &kernel,
                         DeviceAllocator &kernelAlloc)
{
    KernelLaunch launch = kernel.makeLaunch(kernelAlloc);
    KernelRecord &rec = records[recordIndex];

    if (opts.profileCaches) {
        HwProfiler prof(opts.hwConfig);
        rec.hw = prof.profile(launch);
        rec.hasHw = true;
    }

    // Fallback value for single-kernel runs; graph runs overwrite it
    // with the plan-derived (mode- and warmth-independent) figure.
    const uint64_t devPeak = kernelAlloc.bytesPeak();

    if (effectiveParallel() <= 1) {
        SimOptions run_opts = opts.sim;
        applySmSampling(run_opts);
        rec.sim = sim.run(launch, run_opts);
        rec.sim.deviceBytesPeak = devPeak;
        rec.hasSim = true;
        return;
    }

    // Defer the timing simulation: launches are mutually independent
    // (each starts from a flushed device), so they can run
    // concurrently at the next sync(). The launch's trace closures
    // reference the kernel's operand buffers — callers must sync()
    // before those die (GnnPipeline::run and timeline() do).
    pending.push_back(
        PendingSim{recordIndex, std::move(launch), devPeak});
}

void
SimEngine::sync()
{
    if (pending.empty())
        return;
    const int lanes = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(effectiveParallel()),
                         pending.size()));
    if (!simPool || simPool->lanes() != lanes)
        simPool = std::make_unique<ThreadPool>(lanes);
    // Lane 0 reuses the engine's own simulator; each extra lane owns
    // one more. Per-launch sims stay single-threaded so lanes don't
    // oversubscribe each other.
    while (static_cast<int>(laneSims.size()) < lanes - 1)
        laneSims.push_back(std::make_unique<GpuSimulator>(opts.gpu));
    SimOptions lane_opts = opts.sim;
    lane_opts.numThreads = 1;
    applySmSampling(lane_opts);
    // ThreadPool workers must not unwind; capture per-launch errors
    // and rethrow the lowest launch index on the calling thread so
    // the reported failure is independent of lane scheduling.
    std::vector<std::exception_ptr> errors(pending.size());
    simPool->parallelFor(
        pending.size(), [&](size_t i, int lane) {
            GpuSimulator &lane_sim =
                lane == 0 ? sim
                          : *laneSims[static_cast<size_t>(lane - 1)];
            PendingSim &p = pending[i];
            try {
                records[p.recordIndex].sim =
                    lane_sim.run(p.launch, lane_opts);
                records[p.recordIndex].sim.deviceBytesPeak =
                    p.deviceBytesPeak;
                records[p.recordIndex].hasSim = true;
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    pending.clear();
    for (std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
}

} // namespace gsuite
