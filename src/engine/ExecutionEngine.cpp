#include "engine/ExecutionEngine.hpp"

#include "util/Timer.hpp"

namespace gsuite {

double
ExecutionEngine::totalWallUs() const
{
    double total = 0.0;
    for (const auto &r : records)
        total += r.wallUs;
    return total;
}

FunctionalEngine::FunctionalEngine(Options opts) : opts(opts)
{
}

void
FunctionalEngine::run(Kernel &kernel)
{
    KernelRecord rec;
    rec.name = kernel.name();
    rec.kind = kernel.kind();

    Timer t;
    kernel.execute();
    rec.wallUs = t.elapsedUs();

    if (opts.profileCaches) {
        const KernelLaunch launch = kernel.makeLaunch(alloc);
        HwProfiler prof(opts.hwConfig);
        rec.hw = prof.profile(launch);
        rec.hasHw = true;
    }
    records.push_back(std::move(rec));
}

SimEngine::SimEngine(Options opts_in)
    : opts(std::move(opts_in)), sim(opts.gpu)
{
}

void
SimEngine::run(Kernel &kernel)
{
    KernelRecord rec;
    rec.name = kernel.name();
    rec.kind = kernel.kind();

    Timer t;
    kernel.execute();
    rec.wallUs = t.elapsedUs();

    const KernelLaunch launch = kernel.makeLaunch(alloc);
    rec.sim = sim.run(launch, opts.sim);
    rec.hasSim = true;

    if (opts.profileCaches) {
        HwProfiler prof(opts.hwConfig);
        rec.hw = prof.profile(launch);
        rec.hasHw = true;
    }
    records.push_back(std::move(rec));
}

} // namespace gsuite
