#include "engine/ExecutionEngine.hpp"

#include <algorithm>
#include <exception>

#include "util/Timer.hpp"

namespace gsuite {

double
ExecutionEngine::totalWallUs() const
{
    double total = 0.0;
    for (const auto &r : records)
        total += r.wallUs;
    return total;
}

void
ExecutionEngine::run(const OpGraph &graph)
{
    graph.validate();
    const size_t firstRecord = records.size();

    // Merged graphs: each part gets its own device address space so
    // its launches see exactly the addresses a standalone run of
    // that pipeline would (launch simulations start from a flushed
    // device, so cross-part address relationships never matter).
    // Plain pipeline graphs keep the engine's shared allocator —
    // byte-identical behavior to the serial per-kernel path.
    std::vector<std::unique_ptr<DeviceAllocator>> partAllocs;
    if (graph.numParts() > 1)
        for (size_t p = 0; p < graph.numParts(); ++p)
            partAllocs.push_back(
                std::make_unique<DeviceAllocator>());

    // Functional execution and launch construction stay in the
    // deterministic schedule order (device-address assignment and
    // the timeline depend on it); only the deferred timing
    // simulations overlap, joined by sync().
    size_t nodeIndex = 0;
    for (const OpNode &n : graph.nodes()) {
        try {
            if (faultHook)
                faultHook(nodeIndex, *n.kernel);
            runKernel(*n.kernel,
                      partAllocs.empty()
                          ? alloc
                          : *partAllocs[static_cast<size_t>(
                                n.part)]);
        } catch (...) {
            // Deferred simulations reference operand buffers the
            // caller may destroy while unwinding; drain them before
            // propagating the node's failure. A secondary sync
            // failure must not mask the original error.
            try {
                sync();
            } catch (...) {
            }
            throw;
        }
        ++nodeIndex;
    }
    sync();

    GraphRunReport report;
    report.nodes = graph.numNodes();
    report.edges = graph.numEdges();
    report.levels = graph.numLevels();
    report.parts = graph.numParts();
    report.lanes = std::max(1, concurrentLaneCount());
    std::vector<uint64_t> costs;
    costs.reserve(graph.numNodes());
    report.hasSim = graph.numNodes() > 0;
    for (size_t i = 0; i < graph.numNodes(); ++i) {
        const KernelRecord &rec = records.at(firstRecord + i);
        report.hasSim = report.hasSim && rec.hasSim;
        costs.push_back(rec.hasSim ? rec.sim.cycles : 0);
    }
    if (report.hasSim) {
        report.serialCycles = graph.serialCost(costs);
        report.criticalPathCycles = graph.criticalPathCost(costs);
        report.makespanCycles =
            graph.makespan(costs, report.lanes);
    }
    graphReport = report;
}

FunctionalEngine::FunctionalEngine(Options opts) : opts(opts)
{
}

void
FunctionalEngine::runKernel(Kernel &kernel,
                            DeviceAllocator &kernelAlloc)
{
    KernelRecord rec;
    rec.name = kernel.name();
    rec.kind = kernel.kind();

    Timer t;
    kernel.execute();
    rec.wallUs = t.elapsedUs();

    if (opts.profileCaches) {
        const KernelLaunch launch = kernel.makeLaunch(kernelAlloc);
        HwProfiler prof(opts.hwConfig);
        rec.hw = prof.profile(launch);
        rec.hasHw = true;
    }
    records.push_back(std::move(rec));
}

SimEngine::SimEngine(Options opts_in)
    : opts(std::move(opts_in)), sim(opts.gpu)
{
}

int
SimEngine::effectiveParallel() const
{
    if (opts.parallelLaunches > 0)
        return opts.parallelLaunches;
    return std::min(4, ThreadPool::defaultLanes());
}

void
SimEngine::runKernel(Kernel &kernel, DeviceAllocator &kernelAlloc)
{
    KernelRecord rec;
    rec.name = kernel.name();
    rec.kind = kernel.kind();

    Timer t;
    kernel.execute();
    rec.wallUs = t.elapsedUs();

    KernelLaunch launch = kernel.makeLaunch(kernelAlloc);

    if (opts.profileCaches) {
        HwProfiler prof(opts.hwConfig);
        rec.hw = prof.profile(launch);
        rec.hasHw = true;
    }

    if (effectiveParallel() <= 1) {
        rec.sim = sim.run(launch, opts.sim);
        rec.hasSim = true;
        records.push_back(std::move(rec));
        return;
    }

    // Defer the timing simulation: launches are mutually independent
    // (each starts from a flushed device), so they can run
    // concurrently at the next sync(). The launch's trace closures
    // reference the kernel's operand buffers — callers must sync()
    // before those die (GnnPipeline::run and timeline() do).
    records.push_back(std::move(rec));
    pending.push_back(
        PendingSim{records.size() - 1, std::move(launch)});
}

void
SimEngine::sync()
{
    if (pending.empty())
        return;
    const int lanes = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(effectiveParallel()),
                         pending.size()));
    if (!simPool || simPool->lanes() != lanes)
        simPool = std::make_unique<ThreadPool>(lanes);
    // Lane 0 reuses the engine's own simulator; each extra lane owns
    // one more. Per-launch sims stay single-threaded so lanes don't
    // oversubscribe each other.
    while (static_cast<int>(laneSims.size()) < lanes - 1)
        laneSims.push_back(std::make_unique<GpuSimulator>(opts.gpu));
    SimOptions lane_opts = opts.sim;
    lane_opts.numThreads = 1;
    // ThreadPool workers must not unwind; capture per-launch errors
    // and rethrow the lowest launch index on the calling thread so
    // the reported failure is independent of lane scheduling.
    std::vector<std::exception_ptr> errors(pending.size());
    simPool->parallelFor(
        pending.size(), [&](size_t i, int lane) {
            GpuSimulator &lane_sim =
                lane == 0 ? sim
                          : *laneSims[static_cast<size_t>(lane - 1)];
            PendingSim &p = pending[i];
            try {
                records[p.recordIndex].sim =
                    lane_sim.run(p.launch, lane_opts);
                records[p.recordIndex].hasSim = true;
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    pending.clear();
    for (std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
}

} // namespace gsuite
