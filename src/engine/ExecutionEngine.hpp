/**
 * @file
 * Execution engines: where a GNN pipeline's kernels actually run.
 *
 * FunctionalEngine runs the functional semantics with wall-clock
 * timing (the "real GPU card + nvprof" measurement path); SimEngine
 * additionally feeds every launch through the timing simulator (the
 * "GPGPU-Sim" path). Both record a per-kernel timeline that the
 * benches aggregate into the paper's figures.
 */

#ifndef GSUITE_ENGINE_EXECUTIONENGINE_HPP
#define GSUITE_ENGINE_EXECUTIONENGINE_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/OpGraph.hpp"
#include "kernels/Kernel.hpp"
#include "profiler/HwProfiler.hpp"
#include "simgpu/DeviceAllocator.hpp"
#include "simgpu/GpuSimulator.hpp"
#include "simgpu/KernelStats.hpp"
#include "util/ThreadPool.hpp"

namespace gsuite {

class TraceSink;

/** One executed kernel in an engine's timeline. */
struct KernelRecord {
    std::string name;
    KernelClass kind = KernelClass::Aux;
    double wallUs = 0.0; ///< functional host execution time

    bool hasSim = false;
    KernelStats sim; ///< populated by SimEngine

    bool hasHw = false;
    HwProfileResult hw; ///< populated when cache profiling is on
};

/**
 * Dependency/overlap summary of one ExecutionEngine::run(OpGraph&)
 * call. The cycle fields model launch-level concurrency over the
 * engine's simulation lanes (OpGraph::makespan); they are derived
 * from deterministic per-launch cycle counts and the deterministic
 * schedule, so they are themselves deterministic.
 */
struct GraphRunReport {
    size_t nodes = 0;
    size_t edges = 0;
    size_t levels = 0; ///< dependency depth of the graph
    size_t parts = 1;  ///< merged sub-pipelines (batch size)
    int lanes = 1;     ///< concurrent launch lanes modeled
    size_t maxLevelWidth = 0; ///< widest dependency level

    bool hasSim = false; ///< cycle fields valid (sim engine only)
    uint64_t serialCycles = 0;       ///< sum of launch cycles
    uint64_t criticalPathCycles = 0; ///< longest dependency chain
    uint64_t makespanCycles = 0;     ///< list-schedule over lanes

    /** True when plan-backed placement ran (mem-plan mode + full
     *  span coverage); functional execution was level-parallel. */
    bool planned = false;
    /** MemPlan::peakBytes() of the graph (0 without coverage). */
    uint64_t memPeakPlannedBytes = 0;
    /** Naive bump-layout total (0 without coverage). */
    uint64_t memPeakNaiveBytes = 0;
};

/** Abstract engine. */
class ExecutionEngine
{
  public:
    virtual ~ExecutionEngine() = default;

    /** Execute one kernel and append a record to the timeline. */
    void run(Kernel &kernel) { runKernel(kernel, alloc); }

    /**
     * Execute a dataflow graph. In the default naive mode every node
     * runs in the graph's deterministic schedule order (so the
     * timeline — and on the sim engine every launch's
     * device-address layout and stats — is bit-identical to running
     * the kernels serially one by one), then sync()s so deferred
     * simulations overlap across the engine's lanes. In mem-plan
     * mode (setMemPlanMode) functional execution is level-parallel
     * and launches are built against a pre-planned frozen address
     * layout — statistics stay bit-identical because the canonical
     * plan layout IS the naive layout. Merged graphs give each part
     * its own device address space, making per-part statistics
     * bit-identical to running that part's pipeline alone on a
     * fresh engine. Fills lastGraphReport().
     */
    void run(const OpGraph &graph);

    /**
     * Wait for any deferred measurement work (e.g. concurrently
     * simulated launches) to finish. Must be called before operand
     * buffers referenced by recorded launches are destroyed; reading
     * the timeline does it implicitly.
     */
    virtual void sync() {}

    /**
     * Install a hook called before each node of run(OpGraph&) with
     * the node's schedule index and kernel. Fault-injection layers
     * throw RunException(RunError::FaultInjected) from it to
     * exercise the engine's failure-propagation path; the engine
     * drains deferred work before rethrowing so unwinding never
     * leaves simulations referencing dead operand buffers.
     * Pass nullptr to clear.
     */
    void
    setFaultHook(
        std::function<void(size_t, const Kernel &)> hook)
    {
        faultHook = std::move(hook);
    }

    /**
     * Enable plan-backed placement for run(OpGraph&): functional
     * execution goes level-parallel (same-level nodes have no
     * dependency path between them), then a MemPlan pre-maps and
     * freezes every declared span in canonical schedule order before
     * any launch is built — so device addresses, and therefore every
     * simulated statistic, stay bit-identical to a naive in-order
     * run. Graphs with undeclared spans (barriers, external kernels)
     * fall back to naive on-demand placement with a warn().
     *
     * @param execThreads Lanes for level-parallel functional
     *        execution; 0 = auto.
     */
    void
    setMemPlanMode(bool on, int execThreads = 0)
    {
        planMode = on;
        planThreads = execThreads;
    }
    bool memPlanMode() const { return planMode; }

    /**
     * Attach a trace sink (src/obs; nullptr detaches). Each
     * run(OpGraph&) call then appends its engine/sm/memplan tracks
     * (per-lane node spans, sampled warp-scheduler counters on the
     * sim engine, memory high-water + spill/reload spans) to the
     * sink, and the sim engine turns on SM warp-scheduler sampling
     * for its launches. Observation only: every deterministic
     * counter is bit-identical with a sink attached or not (pinned
     * by golden_stats_test). The sink must outlive the engine's last
     * run; the caller owns export.
     */
    void setTraceSink(TraceSink *sink) { trace = sink; }
    TraceSink *traceSink() const { return trace; }

    /** Summary of the most recent run(OpGraph&) call. */
    const GraphRunReport &lastGraphReport() const
    {
        return graphReport;
    }

    /** All kernels executed so far, in order (sync()s first). */
    const std::vector<KernelRecord> &
    timeline()
    {
        sync();
        return records;
    }

    /** Drop the timeline (new measurement run; sync()s first). */
    void
    clearTimeline()
    {
        sync();
        records.clear();
    }

    /** Sum of functional wall-clock times, microseconds. */
    double totalWallUs() const;

    /** Device address space shared by all launches of this engine. */
    DeviceAllocator &allocator() { return alloc; }

  protected:
    /**
     * Execute one kernel against an explicit device address space
     * and append a record (functional execution + measurement).
     * run(Kernel&) passes the engine's shared allocator; naive-mode
     * run(OpGraph&) passes a per-part allocator for merged graphs so
     * each part's address layout matches a standalone run.
     */
    void runKernel(Kernel &kernel, DeviceAllocator &kernelAlloc);

    /**
     * Measurement face of one already-executed kernel: build its
     * launch against @p kernelAlloc and fill records[recordIndex]'s
     * sim/hw fields. Plan-backed runs call this in schedule order
     * after the level-parallel functional phase; runKernel() calls
     * it right after execute(). Default: no measurement.
     */
    virtual void measureKernel(size_t recordIndex, Kernel &kernel,
                               DeviceAllocator &kernelAlloc)
    {
        (void)recordIndex;
        (void)kernel;
        (void)kernelAlloc;
    }

    /**
     * Launch lanes the makespan model of run(OpGraph&) uses; the
     * sim engine reports its concurrent-launch lane count.
     */
    virtual int concurrentLaneCount() const { return 1; }

    std::vector<KernelRecord> records;
    DeviceAllocator alloc;
    GraphRunReport graphReport;
    std::function<void(size_t, const Kernel &)> faultHook;
    TraceSink *trace = nullptr;
    bool planMode = false;
    int planThreads = 0;

  private:
    /** Level-parallel functional phase of a plan-backed run. */
    void executeLevels(const OpGraph &graph, size_t firstRecord);

    std::unique_ptr<ThreadPool> execPool;
};

/** Host-execution engine with optional hardware cache profiling. */
class FunctionalEngine : public ExecutionEngine
{
  public:
    struct Options {
        bool profileCaches = false; ///< fill KernelRecord::hw
        HwProfilerConfig hwConfig;
    };

    FunctionalEngine() = default;
    explicit FunctionalEngine(Options opts);

  protected:
    void measureKernel(size_t recordIndex, Kernel &kernel,
                       DeviceAllocator &kernelAlloc) override;

  private:
    Options opts;
};

/** Timing-simulation engine (functional execution + GPGPU-Sim-like). */
class SimEngine : public ExecutionEngine
{
  public:
    struct Options {
        GpuConfig gpu = GpuConfig::v100Sim();
        SimOptions sim;
        bool profileCaches = false; ///< also fill KernelRecord::hw
        HwProfilerConfig hwConfig;

        /**
         * Independent launches simulated concurrently, each on its
         * own single-threaded GpuSimulator instance. Launch timing is
         * independent of launch order (every launch starts from a
         * flushed device), so results are identical to serial
         * simulation. 1 = inline/serial; 0 = auto.
         */
        int parallelLaunches = 1;
    };

    SimEngine() : SimEngine(Options{}) {}
    explicit SimEngine(Options opts);

    void sync() override;

    const GpuConfig &gpuConfig() const { return sim.config(); }

  protected:
    void measureKernel(size_t recordIndex, Kernel &kernel,
                       DeviceAllocator &kernelAlloc) override;
    int concurrentLaneCount() const override
    {
        return effectiveParallel();
    }

  private:
    struct PendingSim {
        size_t recordIndex;
        KernelLaunch launch;
        uint64_t deviceBytesPeak = 0;
    };

    Options opts;
    GpuSimulator sim;
    std::vector<PendingSim> pending;
    std::unique_ptr<ThreadPool> simPool;
    std::vector<std::unique_ptr<GpuSimulator>> laneSims;

    int effectiveParallel() const;
    /** Turn on SM warp-scheduler sampling when the attached sink
     *  selects the sm component. */
    void applySmSampling(SimOptions &runOpts) const;
};

} // namespace gsuite

#endif // GSUITE_ENGINE_EXECUTIONENGINE_HPP
