/**
 * @file
 * Execution engines: where a GNN pipeline's kernels actually run.
 *
 * FunctionalEngine runs the functional semantics with wall-clock
 * timing (the "real GPU card + nvprof" measurement path); SimEngine
 * additionally feeds every launch through the timing simulator (the
 * "GPGPU-Sim" path). Both record a per-kernel timeline that the
 * benches aggregate into the paper's figures.
 */

#ifndef GSUITE_ENGINE_EXECUTIONENGINE_HPP
#define GSUITE_ENGINE_EXECUTIONENGINE_HPP

#include <string>
#include <vector>

#include "kernels/Kernel.hpp"
#include "profiler/HwProfiler.hpp"
#include "simgpu/DeviceAllocator.hpp"
#include "simgpu/GpuSimulator.hpp"
#include "simgpu/KernelStats.hpp"

namespace gsuite {

/** One executed kernel in an engine's timeline. */
struct KernelRecord {
    std::string name;
    KernelClass kind = KernelClass::Aux;
    double wallUs = 0.0; ///< functional host execution time

    bool hasSim = false;
    KernelStats sim; ///< populated by SimEngine

    bool hasHw = false;
    HwProfileResult hw; ///< populated when cache profiling is on
};

/** Abstract engine. */
class ExecutionEngine
{
  public:
    virtual ~ExecutionEngine() = default;

    /** Execute one kernel and append a record to the timeline. */
    virtual void run(Kernel &kernel) = 0;

    /** All kernels executed so far, in order. */
    const std::vector<KernelRecord> &timeline() const
    {
        return records;
    }

    /** Drop the timeline (new measurement run). */
    void clearTimeline() { records.clear(); }

    /** Sum of functional wall-clock times, microseconds. */
    double totalWallUs() const;

    /** Device address space shared by all launches of this engine. */
    DeviceAllocator &allocator() { return alloc; }

  protected:
    std::vector<KernelRecord> records;
    DeviceAllocator alloc;
};

/** Host-execution engine with optional hardware cache profiling. */
class FunctionalEngine : public ExecutionEngine
{
  public:
    struct Options {
        bool profileCaches = false; ///< fill KernelRecord::hw
        HwProfilerConfig hwConfig;
    };

    FunctionalEngine() = default;
    explicit FunctionalEngine(Options opts);

    void run(Kernel &kernel) override;

  private:
    Options opts;
};

/** Timing-simulation engine (functional execution + GPGPU-Sim-like). */
class SimEngine : public ExecutionEngine
{
  public:
    struct Options {
        GpuConfig gpu = GpuConfig::v100Sim();
        SimOptions sim;
        bool profileCaches = false; ///< also fill KernelRecord::hw
        HwProfilerConfig hwConfig;
    };

    SimEngine() : SimEngine(Options{}) {}
    explicit SimEngine(Options opts);

    void run(Kernel &kernel) override;

    const GpuConfig &gpuConfig() const { return sim.config(); }

  private:
    Options opts;
    GpuSimulator sim;
};

} // namespace gsuite

#endif // GSUITE_ENGINE_EXECUTIONENGINE_HPP
