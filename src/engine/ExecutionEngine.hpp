/**
 * @file
 * Execution engines: where a GNN pipeline's kernels actually run.
 *
 * FunctionalEngine runs the functional semantics with wall-clock
 * timing (the "real GPU card + nvprof" measurement path); SimEngine
 * additionally feeds every launch through the timing simulator (the
 * "GPGPU-Sim" path). Both record a per-kernel timeline that the
 * benches aggregate into the paper's figures.
 */

#ifndef GSUITE_ENGINE_EXECUTIONENGINE_HPP
#define GSUITE_ENGINE_EXECUTIONENGINE_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/OpGraph.hpp"
#include "kernels/Kernel.hpp"
#include "profiler/HwProfiler.hpp"
#include "simgpu/DeviceAllocator.hpp"
#include "simgpu/GpuSimulator.hpp"
#include "simgpu/KernelStats.hpp"
#include "util/ThreadPool.hpp"

namespace gsuite {

/** One executed kernel in an engine's timeline. */
struct KernelRecord {
    std::string name;
    KernelClass kind = KernelClass::Aux;
    double wallUs = 0.0; ///< functional host execution time

    bool hasSim = false;
    KernelStats sim; ///< populated by SimEngine

    bool hasHw = false;
    HwProfileResult hw; ///< populated when cache profiling is on
};

/**
 * Dependency/overlap summary of one ExecutionEngine::run(OpGraph&)
 * call. The cycle fields model launch-level concurrency over the
 * engine's simulation lanes (OpGraph::makespan); they are derived
 * from deterministic per-launch cycle counts and the deterministic
 * schedule, so they are themselves deterministic.
 */
struct GraphRunReport {
    size_t nodes = 0;
    size_t edges = 0;
    size_t levels = 0; ///< dependency depth of the graph
    size_t parts = 1;  ///< merged sub-pipelines (batch size)
    int lanes = 1;     ///< concurrent launch lanes modeled

    bool hasSim = false; ///< cycle fields valid (sim engine only)
    uint64_t serialCycles = 0;       ///< sum of launch cycles
    uint64_t criticalPathCycles = 0; ///< longest dependency chain
    uint64_t makespanCycles = 0;     ///< list-schedule over lanes
};

/** Abstract engine. */
class ExecutionEngine
{
  public:
    virtual ~ExecutionEngine() = default;

    /** Execute one kernel and append a record to the timeline. */
    void run(Kernel &kernel) { runKernel(kernel, alloc); }

    /**
     * Execute a dataflow graph: every node runs in the graph's
     * deterministic schedule order (so the timeline — and on the
     * sim engine every launch's device-address layout and stats —
     * is bit-identical to running the kernels serially one by one),
     * then sync()s so deferred simulations overlap across the
     * engine's lanes. Merged graphs give each part its own device
     * address space, making per-part statistics bit-identical to
     * running that part's pipeline alone on a fresh engine.
     * Fills lastGraphReport().
     */
    void run(const OpGraph &graph);

    /**
     * Wait for any deferred measurement work (e.g. concurrently
     * simulated launches) to finish. Must be called before operand
     * buffers referenced by recorded launches are destroyed; reading
     * the timeline does it implicitly.
     */
    virtual void sync() {}

    /**
     * Install a hook called before each node of run(OpGraph&) with
     * the node's schedule index and kernel. Fault-injection layers
     * throw RunException(RunError::FaultInjected) from it to
     * exercise the engine's failure-propagation path; the engine
     * drains deferred work before rethrowing so unwinding never
     * leaves simulations referencing dead operand buffers.
     * Pass nullptr to clear.
     */
    void
    setFaultHook(
        std::function<void(size_t, const Kernel &)> hook)
    {
        faultHook = std::move(hook);
    }

    /** Summary of the most recent run(OpGraph&) call. */
    const GraphRunReport &lastGraphReport() const
    {
        return graphReport;
    }

    /** All kernels executed so far, in order (sync()s first). */
    const std::vector<KernelRecord> &
    timeline()
    {
        sync();
        return records;
    }

    /** Drop the timeline (new measurement run; sync()s first). */
    void
    clearTimeline()
    {
        sync();
        records.clear();
    }

    /** Sum of functional wall-clock times, microseconds. */
    double totalWallUs() const;

    /** Device address space shared by all launches of this engine. */
    DeviceAllocator &allocator() { return alloc; }

  protected:
    /**
     * Execute one kernel against an explicit device address space
     * and append a record. run(Kernel&) passes the engine's shared
     * allocator; run(OpGraph&) passes a per-part allocator for
     * merged graphs so each part's address layout matches a
     * standalone run.
     */
    virtual void runKernel(Kernel &kernel,
                           DeviceAllocator &kernelAlloc) = 0;

    /**
     * Launch lanes the makespan model of run(OpGraph&) uses; the
     * sim engine reports its concurrent-launch lane count.
     */
    virtual int concurrentLaneCount() const { return 1; }

    std::vector<KernelRecord> records;
    DeviceAllocator alloc;
    GraphRunReport graphReport;
    std::function<void(size_t, const Kernel &)> faultHook;
};

/** Host-execution engine with optional hardware cache profiling. */
class FunctionalEngine : public ExecutionEngine
{
  public:
    struct Options {
        bool profileCaches = false; ///< fill KernelRecord::hw
        HwProfilerConfig hwConfig;
    };

    FunctionalEngine() = default;
    explicit FunctionalEngine(Options opts);

  protected:
    void runKernel(Kernel &kernel,
                   DeviceAllocator &kernelAlloc) override;

  private:
    Options opts;
};

/** Timing-simulation engine (functional execution + GPGPU-Sim-like). */
class SimEngine : public ExecutionEngine
{
  public:
    struct Options {
        GpuConfig gpu = GpuConfig::v100Sim();
        SimOptions sim;
        bool profileCaches = false; ///< also fill KernelRecord::hw
        HwProfilerConfig hwConfig;

        /**
         * Independent launches simulated concurrently, each on its
         * own single-threaded GpuSimulator instance. Launch timing is
         * independent of launch order (every launch starts from a
         * flushed device), so results are identical to serial
         * simulation. 1 = inline/serial; 0 = auto.
         */
        int parallelLaunches = 1;
    };

    SimEngine() : SimEngine(Options{}) {}
    explicit SimEngine(Options opts);

    void sync() override;

    const GpuConfig &gpuConfig() const { return sim.config(); }

  protected:
    void runKernel(Kernel &kernel,
                   DeviceAllocator &kernelAlloc) override;
    int concurrentLaneCount() const override
    {
        return effectiveParallel();
    }

  private:
    struct PendingSim {
        size_t recordIndex;
        KernelLaunch launch;
    };

    Options opts;
    GpuSimulator sim;
    std::vector<PendingSim> pending;
    std::unique_ptr<ThreadPool> simPool;
    std::vector<std::unique_ptr<GpuSimulator>> laneSims;

    int effectiveParallel() const;
};

} // namespace gsuite

#endif // GSUITE_ENGINE_EXECUTIONENGINE_HPP
