/**
 * @file
 * Execution engines: where a GNN pipeline's kernels actually run.
 *
 * FunctionalEngine runs the functional semantics with wall-clock
 * timing (the "real GPU card + nvprof" measurement path); SimEngine
 * additionally feeds every launch through the timing simulator (the
 * "GPGPU-Sim" path). Both record a per-kernel timeline that the
 * benches aggregate into the paper's figures.
 */

#ifndef GSUITE_ENGINE_EXECUTIONENGINE_HPP
#define GSUITE_ENGINE_EXECUTIONENGINE_HPP

#include <memory>
#include <string>
#include <vector>

#include "kernels/Kernel.hpp"
#include "profiler/HwProfiler.hpp"
#include "simgpu/DeviceAllocator.hpp"
#include "simgpu/GpuSimulator.hpp"
#include "simgpu/KernelStats.hpp"
#include "util/ThreadPool.hpp"

namespace gsuite {

/** One executed kernel in an engine's timeline. */
struct KernelRecord {
    std::string name;
    KernelClass kind = KernelClass::Aux;
    double wallUs = 0.0; ///< functional host execution time

    bool hasSim = false;
    KernelStats sim; ///< populated by SimEngine

    bool hasHw = false;
    HwProfileResult hw; ///< populated when cache profiling is on
};

/** Abstract engine. */
class ExecutionEngine
{
  public:
    virtual ~ExecutionEngine() = default;

    /** Execute one kernel and append a record to the timeline. */
    virtual void run(Kernel &kernel) = 0;

    /**
     * Wait for any deferred measurement work (e.g. concurrently
     * simulated launches) to finish. Must be called before operand
     * buffers referenced by recorded launches are destroyed; reading
     * the timeline does it implicitly.
     */
    virtual void sync() {}

    /** All kernels executed so far, in order (sync()s first). */
    const std::vector<KernelRecord> &
    timeline()
    {
        sync();
        return records;
    }

    /** Drop the timeline (new measurement run; sync()s first). */
    void
    clearTimeline()
    {
        sync();
        records.clear();
    }

    /** Sum of functional wall-clock times, microseconds. */
    double totalWallUs() const;

    /** Device address space shared by all launches of this engine. */
    DeviceAllocator &allocator() { return alloc; }

  protected:
    std::vector<KernelRecord> records;
    DeviceAllocator alloc;
};

/** Host-execution engine with optional hardware cache profiling. */
class FunctionalEngine : public ExecutionEngine
{
  public:
    struct Options {
        bool profileCaches = false; ///< fill KernelRecord::hw
        HwProfilerConfig hwConfig;
    };

    FunctionalEngine() = default;
    explicit FunctionalEngine(Options opts);

    void run(Kernel &kernel) override;

  private:
    Options opts;
};

/** Timing-simulation engine (functional execution + GPGPU-Sim-like). */
class SimEngine : public ExecutionEngine
{
  public:
    struct Options {
        GpuConfig gpu = GpuConfig::v100Sim();
        SimOptions sim;
        bool profileCaches = false; ///< also fill KernelRecord::hw
        HwProfilerConfig hwConfig;

        /**
         * Independent launches simulated concurrently, each on its
         * own single-threaded GpuSimulator instance. Launch timing is
         * independent of launch order (every launch starts from a
         * flushed device), so results are identical to serial
         * simulation. 1 = inline/serial; 0 = auto.
         */
        int parallelLaunches = 1;
    };

    SimEngine() : SimEngine(Options{}) {}
    explicit SimEngine(Options opts);

    void run(Kernel &kernel) override;
    void sync() override;

    const GpuConfig &gpuConfig() const { return sim.config(); }

  private:
    struct PendingSim {
        size_t recordIndex;
        KernelLaunch launch;
    };

    Options opts;
    GpuSimulator sim;
    std::vector<PendingSim> pending;
    std::unique_ptr<ThreadPool> simPool;
    std::vector<std::unique_ptr<GpuSimulator>> laneSims;

    int effectiveParallel() const;
};

} // namespace gsuite

#endif // GSUITE_ENGINE_EXECUTIONENGINE_HPP
