/**
 * @file
 * The unified result table for sweeps: one SweepResult per expanded
 * SweepPoint, ordered by point index, with per-class aggregation
 * done once here instead of per bench. Emitters cover the three
 * output shapes every bench needs: an aligned console table, CSV
 * rows (standard or custom cells), and a JSON dump with per-run
 * samples for trend tracking.
 */

#ifndef GSUITE_SUITE_RESULTSTORE_HPP
#define GSUITE_SUITE_RESULTSTORE_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "suite/Runner.hpp"
#include "suite/SweepSpec.hpp"
#include "util/RunError.hpp"

namespace gsuite {

/** Outcome of one sweep point, successful or failed. */
struct SweepResult {
    SweepPoint point;
    bool ok = false;
    std::string error; ///< failure description when !ok
    /** Failure taxonomy when !ok (None while ok). */
    RunError errorKind = RunError::None;

    RunOutcome outcome; ///< valid only when ok

    // Aggregations over outcome.timeline, computed once on insert.
    std::map<KernelClass, double> wallByClass;
    std::map<KernelClass, KernelStats> simByClass;
    std::map<KernelClass, HwProfileResult> hwByClass;
};

/** Typed, index-ordered table of sweep results. */
class ResultStore
{
  public:
    /** Size the table for @p n points (all slots empty/failed). */
    void resize(size_t n);

    /**
     * Install the result for its point's index slot, computing the
     * per-class aggregations. Thread-safe for distinct indices.
     */
    void put(SweepResult result);

    size_t size() const { return results.size(); }
    bool empty() const { return results.empty(); }
    const SweepResult &at(size_t i) const;
    std::vector<SweepResult>::const_iterator
    begin() const { return results.begin(); }
    std::vector<SweepResult>::const_iterator
    end() const { return results.end(); }

    /** Count of failed points. */
    size_t failures() const;
    bool allOk() const { return failures() == 0; }

    /** Lookup by exact label; nullptr if absent. */
    const SweepResult *find(const std::string &label) const;

    /** First result whose point matches; nullptr if none. */
    const SweepResult *
    find(const std::function<bool(const SweepPoint &)> &pred) const;

    /** Render a one-row-per-point summary table. */
    std::string toTable(const std::string &title = "sweep") const;

    /** Print toTable() to stdout. */
    void printTable(const std::string &title = "sweep") const;

    /**
     * Standard CSV: one row per point with identity columns and
     * end-to-end/kernel timing summaries. Empty path = no-op.
     */
    void toCsv(const std::string &path) const;

    /**
     * Custom CSV: @p rowsFn maps each result to zero or more rows
     * matching @p header. Iteration order is point order. Empty
     * path = no-op.
     */
    using RowsFn = std::function<std::vector<std::vector<std::string>>(
        const SweepResult &)>;
    void toCsv(const std::string &path,
               const std::vector<std::string> &header,
               const RowsFn &rowsFn) const;

    /**
     * JSON dump: per-point identity, end-to-end stats with the
     * underlying per-run samples, custom metrics, and per-class sim
     * statistics. @p meta lands in a top-level "meta" object.
     * fatal() on I/O error; empty path = no-op.
     */
    void toJson(const std::string &path,
                const std::map<std::string, double> &meta = {}) const;

  private:
    std::vector<SweepResult> results;
};

} // namespace gsuite

#endif // GSUITE_SUITE_RESULTSTORE_HPP
