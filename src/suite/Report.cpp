#include "suite/Report.hpp"

#include <cstdio>
#include <sstream>

#include "util/Csv.hpp"
#include "util/Table.hpp"

namespace gsuite {

std::string
renderReport(const RunOutcome &outcome)
{
    std::ostringstream os;
    os << "configuration: " << outcome.params.describe() << "\n";
    os << outcome.graphSummary << " (scale: "
       << outcome.scaleDescription << ")\n";
    char line[160];
    std::snprintf(line, sizeof(line),
                  "end-to-end: mean %.3f ms over %d runs "
                  "(min %.3f, max %.3f); kernel time %.3f ms\n",
                  outcome.meanEndToEndUs / 1e3, outcome.params.runs,
                  outcome.minEndToEndUs / 1e3,
                  outcome.maxEndToEndUs / 1e3,
                  outcome.meanKernelUs / 1e3);
    os << line;

    TablePrinter timeline("per-kernel timeline (last run)");
    const bool has_sim =
        !outcome.timeline.empty() && outcome.timeline.front().hasSim;
    if (has_sim)
        timeline.header({"kernel", "class", "wall us", "sim cycles",
                         "MemDep%", "L1 hit%"});
    else
        timeline.header({"kernel", "class", "wall us"});
    for (const auto &rec : outcome.timeline) {
        if (rec.hasSim) {
            timeline.row(
                {rec.name, kernelClassName(rec.kind),
                 fmtDouble(rec.wallUs, 1),
                 std::to_string(rec.sim.cycles),
                 fmtDouble(100 * rec.sim.stallShare(
                               StallReason::MemoryDependency), 1),
                 fmtDouble(100 * rec.sim.l1HitRate(), 1)});
        } else {
            timeline.row({rec.name, kernelClassName(rec.kind),
                          fmtDouble(rec.wallUs, 1)});
        }
    }
    os << timeline.render();

    // Per-class share summary (the Fig. 4 view of this single run).
    const auto by_class = wallUsByClass(outcome.timeline);
    double total = 0;
    for (const auto &[cls, us] : by_class)
        total += us;
    if (total > 0) {
        TablePrinter shares("kernel time by class");
        shares.header({"class", "share%"});
        for (const auto &[cls, us] : by_class)
            shares.row({kernelClassName(cls),
                        fmtDouble(100.0 * us / total, 1)});
        os << shares.render();
    }
    return os.str();
}

void
printReport(const RunOutcome &outcome)
{
    std::fputs(renderReport(outcome).c_str(), stdout);
    std::fflush(stdout);
}

void
writeReportCsv(const RunOutcome &outcome, const std::string &path)
{
    CsvWriter csv(path);
    csv.header({"kernel", "class", "wall_us", "sim_cycles",
                "memdep_share", "l1_hit_rate", "l2_hit_rate"});
    for (const auto &rec : outcome.timeline) {
        std::vector<std::string> cells = {
            rec.name, kernelClassName(rec.kind),
            fmtDouble(rec.wallUs, 2)};
        if (rec.hasSim) {
            cells.push_back(std::to_string(rec.sim.cycles));
            cells.push_back(fmtDouble(
                rec.sim.stallShare(StallReason::MemoryDependency),
                4));
            cells.push_back(fmtDouble(rec.sim.l1HitRate(), 4));
            cells.push_back(fmtDouble(rec.sim.l2HitRate(), 4));
        }
        csv.row(cells);
    }
}

} // namespace gsuite
