#include "suite/ResultStore.hpp"

#include <cstdio>

#include "frameworks/FrameworkAdapter.hpp"
#include "util/Csv.hpp"
#include "util/Logging.hpp"
#include "util/Table.hpp"

namespace gsuite {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

const char *
engineName(EngineKind e)
{
    return e == EngineKind::Sim ? "sim" : "functional";
}

} // namespace

void
ResultStore::resize(size_t n)
{
    results.resize(n);
    for (size_t i = 0; i < n; ++i)
        results[i].point.index = i;
}

void
ResultStore::put(SweepResult result)
{
    panicIf(result.point.index >= results.size(),
            "SweepResult index out of range");
    if (result.ok) {
        result.wallByClass = wallUsByClass(result.outcome.timeline);
        result.simByClass = simStatsByClass(result.outcome.timeline);
        for (const auto &rec : result.outcome.timeline) {
            if (!rec.hasHw)
                continue;
            HwProfileResult &agg = result.hwByClass[rec.kind];
            agg.l1Hits += rec.hw.l1Hits;
            agg.l1Misses += rec.hw.l1Misses;
            agg.l2Hits += rec.hw.l2Hits;
            agg.l2Misses += rec.hw.l2Misses;
        }
    }
    results[result.point.index] = std::move(result);
}

const SweepResult &
ResultStore::at(size_t i) const
{
    panicIf(i >= results.size(), "ResultStore index out of range");
    return results[i];
}

size_t
ResultStore::failures() const
{
    size_t n = 0;
    for (const auto &r : results)
        n += r.ok ? 0 : 1;
    return n;
}

const SweepResult *
ResultStore::find(const std::string &label) const
{
    for (const auto &r : results)
        if (r.point.label == label)
            return &r;
    return nullptr;
}

const SweepResult *
ResultStore::find(
    const std::function<bool(const SweepPoint &)> &pred) const
{
    for (const auto &r : results)
        if (pred(r.point))
            return &r;
    return nullptr;
}

std::string
ResultStore::toTable(const std::string &title) const
{
    TablePrinter table(title);
    table.header({"point", "status", "end-to-end ms", "kernel ms",
                  "sim cycles"});
    for (const auto &r : results) {
        if (!r.ok) {
            table.row({r.point.label, "FAIL: " + r.error});
            continue;
        }
        uint64_t cycles = 0;
        for (const auto &[cls, st] : r.simByClass)
            cycles += st.cycles;
        table.row({r.point.label, "ok",
                   fmtDouble(r.outcome.meanEndToEndUs / 1e3, 3),
                   fmtDouble(r.outcome.meanKernelUs / 1e3, 3),
                   cycles ? std::to_string(cycles) : "-"});
    }
    return table.render();
}

void
ResultStore::printTable(const std::string &title) const
{
    std::fputs(toTable(title).c_str(), stdout);
    std::fflush(stdout);
}

void
ResultStore::toCsv(const std::string &path) const
{
    CsvWriter csv(path);
    csv.header({"label", "variant", "framework", "model", "comp",
                "dataset", "engine", "scale", "ok", "error", "runs",
                "end_to_end_us_mean", "end_to_end_us_min",
                "end_to_end_us_max", "kernel_us_mean"});
    for (const auto &r : results) {
        const UserParams &p = r.point.params;
        csv.row({r.point.label, r.point.variant,
                 frameworkName(p.framework), gnnModelName(p.model),
                 compModelName(p.comp), p.dataset,
                 engineName(p.engine), r.outcome.scaleDescription,
                 r.ok ? "1" : "0", r.error,
                 std::to_string(p.runs),
                 fmtDouble(r.outcome.meanEndToEndUs, 3),
                 fmtDouble(r.outcome.minEndToEndUs, 3),
                 fmtDouble(r.outcome.maxEndToEndUs, 3),
                 fmtDouble(r.outcome.meanKernelUs, 3)});
    }
}

void
ResultStore::toCsv(const std::string &path,
                   const std::vector<std::string> &header,
                   const RowsFn &rowsFn) const
{
    CsvWriter csv(path);
    csv.header(header);
    for (const auto &r : results)
        for (const auto &row : rowsFn(r))
            csv.row(row);
}

void
ResultStore::toJson(const std::string &path,
                    const std::map<std::string, double> &meta) const
{
    if (path.empty())
        return;
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write '%s'", path.c_str());

    auto samples = [&](const std::vector<double> &v) {
        std::fprintf(f, "[");
        for (size_t i = 0; i < v.size(); ++i)
            std::fprintf(f, "%s%.3f", i ? ", " : "", v[i]);
        std::fprintf(f, "]");
    };

    std::fprintf(f, "{\n  \"meta\": {");
    {
        bool first = true;
        for (const auto &[key, value] : meta) {
            std::fprintf(f, "%s\"%s\": %.6g", first ? "" : ", ",
                         jsonEscape(key).c_str(), value);
            first = false;
        }
    }
    std::fprintf(f, "},\n  \"points\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const SweepResult &r = results[i];
        const UserParams &p = r.point.params;
        const RunOutcome &o = r.outcome;
        std::fprintf(
            f,
            "    {\"label\": \"%s\", \"variant\": \"%s\", "
            "\"framework\": \"%s\", \"model\": \"%s\", "
            "\"comp\": \"%s\", \"dataset\": \"%s\", "
            "\"engine\": \"%s\", \"ok\": %s",
            jsonEscape(r.point.label).c_str(),
            jsonEscape(r.point.variant).c_str(),
            frameworkName(p.framework), gnnModelName(p.model),
            compModelName(p.comp), jsonEscape(p.dataset).c_str(),
            engineName(p.engine), r.ok ? "true" : "false");
        if (!r.ok)
            std::fprintf(f, ", \"error\": \"%s\"",
                         jsonEscape(r.error).c_str());
        if (r.ok) {
            std::fprintf(f,
                         ",\n     \"end_to_end_us\": {\"mean\": %.3f, "
                         "\"min\": %.3f, \"max\": %.3f, \"samples\": ",
                         o.meanEndToEndUs, o.minEndToEndUs,
                         o.maxEndToEndUs);
            samples(o.endToEndSamplesUs);
            std::fprintf(f,
                         "},\n     \"kernel_us\": {\"mean\": %.3f, "
                         "\"samples\": ",
                         o.meanKernelUs);
            samples(o.kernelSamplesUs);
            std::fprintf(f, "}");
            if (!o.metrics.empty()) {
                std::fprintf(f, ",\n     \"metrics\": {");
                bool first = true;
                for (const auto &[key, value] : o.metrics) {
                    std::fprintf(f, "%s\"%s\": %.6g",
                                 first ? "" : ", ",
                                 jsonEscape(key).c_str(), value);
                    first = false;
                }
                std::fprintf(f, "}");
            }
            if (!r.simByClass.empty()) {
                std::fprintf(f, ",\n     \"classes\": [");
                bool first = true;
                for (const auto &[cls, st] : r.simByClass) {
                    std::fprintf(
                        f,
                        "%s{\"class\": \"%s\", \"cycles\": %llu, "
                        "\"warp_instrs\": %llu, "
                        "\"l1_hit_rate\": %.4f, "
                        "\"l2_hit_rate\": %.4f, "
                        "\"trace_bytes_peak\": %llu}",
                        first ? "" : ", ", kernelClassShortForm(cls),
                        static_cast<unsigned long long>(st.cycles),
                        static_cast<unsigned long long>(
                            st.warpInstrs),
                        st.l1HitRate(), st.l2HitRate(),
                        static_cast<unsigned long long>(
                            st.traceBytesPeak));
                    first = false;
                }
                std::fprintf(f, "]");
            }
        }
        std::fprintf(f, "}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    if (std::fclose(f) != 0)
        fatal("write error on '%s'", path.c_str());
}

} // namespace gsuite
