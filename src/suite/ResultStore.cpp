#include "suite/ResultStore.hpp"

#include <cstdio>
#include <set>

#include "frameworks/FrameworkAdapter.hpp"
#include "hwdb/HwConfigFile.hpp"
#include "hwdb/HwPresets.hpp"
#include "util/Csv.hpp"
#include "util/Logging.hpp"
#include "util/Table.hpp"

namespace gsuite {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

const char *
engineName(EngineKind e)
{
    return e == EngineKind::Sim ? "sim" : "functional";
}

/**
 * Identity of the machine a point effectively simulated: the gpu
 * spec plus any engaged scheduler/l1-bypass overrides, so ablation
 * variants sharing one spec get distinct provenance entries.
 */
std::string
effectiveGpuKey(const UserParams &p)
{
    std::string key = p.gpu;
    if (p.scheduler)
        key += std::string("+scheduler=") +
               schedulerPolicyName(*p.scheduler);
    if (p.l1BypassLoads)
        key += std::string("+l1-bypass=") +
               (*p.l1BypassLoads ? "on" : "off");
    return key;
}

} // namespace

void
ResultStore::resize(size_t n)
{
    results.resize(n);
    for (size_t i = 0; i < n; ++i)
        results[i].point.index = i;
}

void
ResultStore::put(SweepResult result)
{
    panicIf(result.point.index >= results.size(),
            "SweepResult index out of range");
    if (result.ok) {
        result.wallByClass = wallUsByClass(result.outcome.timeline);
        result.simByClass = simStatsByClass(result.outcome.timeline);
        for (const auto &rec : result.outcome.timeline) {
            if (!rec.hasHw)
                continue;
            HwProfileResult &agg = result.hwByClass[rec.kind];
            agg.l1Hits += rec.hw.l1Hits;
            agg.l1Misses += rec.hw.l1Misses;
            agg.l2Hits += rec.hw.l2Hits;
            agg.l2Misses += rec.hw.l2Misses;
        }
    }
    results[result.point.index] = std::move(result);
}

const SweepResult &
ResultStore::at(size_t i) const
{
    panicIf(i >= results.size(), "ResultStore index out of range");
    return results[i];
}

size_t
ResultStore::failures() const
{
    size_t n = 0;
    for (const auto &r : results)
        n += r.ok ? 0 : 1;
    return n;
}

const SweepResult *
ResultStore::find(const std::string &label) const
{
    for (const auto &r : results)
        if (r.point.label == label)
            return &r;
    return nullptr;
}

const SweepResult *
ResultStore::find(
    const std::function<bool(const SweepPoint &)> &pred) const
{
    for (const auto &r : results)
        if (pred(r.point))
            return &r;
    return nullptr;
}

std::string
ResultStore::toTable(const std::string &title) const
{
    TablePrinter table(title);
    table.header({"point", "status", "end-to-end ms", "kernel ms",
                  "sim cycles"});
    for (const auto &r : results) {
        if (!r.ok) {
            table.row({r.point.label, "FAIL: " + r.error});
            continue;
        }
        uint64_t cycles = 0;
        for (const auto &[cls, st] : r.simByClass)
            cycles += st.cycles;
        table.row({r.point.label, "ok",
                   fmtDouble(r.outcome.meanEndToEndUs / 1e3, 3),
                   fmtDouble(r.outcome.meanKernelUs / 1e3, 3),
                   cycles ? std::to_string(cycles) : "-"});
    }
    return table.render();
}

void
ResultStore::printTable(const std::string &title) const
{
    std::fputs(toTable(title).c_str(), stdout);
    std::fflush(stdout);
}

void
ResultStore::toCsv(const std::string &path) const
{
    CsvWriter csv(path);
    csv.header({"label", "variant", "gpu", "framework", "model",
                "comp", "dataset", "engine", "scale", "ok", "error",
                "error_kind", "runs", "end_to_end_us_mean",
                "end_to_end_us_min", "end_to_end_us_max",
                "kernel_us_mean", "trace_path"});
    for (const auto &r : results) {
        const UserParams &p = r.point.params;
        csv.row({r.point.label, r.point.variant, p.gpu,
                 frameworkName(p.framework), gnnModelName(p.model),
                 compModelName(p.comp), p.dataset,
                 engineName(p.engine), r.outcome.scaleDescription,
                 r.ok ? "1" : "0", r.error,
                 r.ok ? "" : runErrorName(r.errorKind),
                 std::to_string(p.runs),
                 fmtDouble(r.outcome.meanEndToEndUs, 3),
                 fmtDouble(r.outcome.minEndToEndUs, 3),
                 fmtDouble(r.outcome.maxEndToEndUs, 3),
                 fmtDouble(r.outcome.meanKernelUs, 3),
                 r.outcome.tracePath});
    }
}

void
ResultStore::toCsv(const std::string &path,
                   const std::vector<std::string> &header,
                   const RowsFn &rowsFn) const
{
    CsvWriter csv(path);
    csv.header(header);
    for (const auto &r : results)
        for (const auto &row : rowsFn(r))
            csv.row(row);
}

void
ResultStore::toJson(const std::string &path,
                    const std::map<std::string, double> &meta) const
{
    if (path.empty())
        return;
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot write '%s'", path.c_str());

    auto samples = [&](const std::vector<double> &v) {
        std::fprintf(f, "[");
        for (size_t i = 0; i < v.size(); ++i)
            std::fprintf(f, "%s%.3f", i ? ", " : "", v[i]);
        std::fprintf(f, "]");
    };

    std::fprintf(f, "{\n  \"meta\": {");
    {
        bool first = true;
        for (const auto &[key, value] : meta) {
            std::fprintf(f, "%s\"%s\": %.6g", first ? "" : ", ",
                         jsonEscape(key).c_str(), value);
            first = false;
        }
    }
    std::fprintf(f, "},\n");

    // Full hardware provenance: every distinct machine the sweep
    // *simulated* (functional points never touch a GPU model), as
    // the complete hwdb key table, keyed by the effective config —
    // gpu spec plus engaged overrides, so an ablation's gto and lrr
    // points get separate entries (each point's "gpu_config" field
    // names its entry). Run-time snapshots take precedence so edits
    // to a file: spec after the run cannot misreport what executed;
    // preset-based keys resolve through UserParams otherwise; a
    // file: spec with no snapshot is marked unavailable rather than
    // re-read.
    {
        struct Provenance {
            const std::vector<std::pair<std::string, std::string>>
                *snapshot = nullptr;
            const UserParams *params = nullptr;
        };
        std::map<std::string, Provenance> configs;
        for (const auto &r : results) {
            const UserParams &p = r.point.params;
            if (p.engine != EngineKind::Sim || p.gpu.empty() ||
                p.gpu.find(',') != std::string::npos)
                continue;
            Provenance &prov = configs[effectiveGpuKey(p)];
            if (!prov.params)
                prov.params = &p;
            if (!prov.snapshot &&
                !r.outcome.gpuConfigSnapshot.empty())
                prov.snapshot = &r.outcome.gpuConfigSnapshot;
        }
        std::fprintf(f, "  \"gpu_configs\": {");
        bool first_cfg = true;
        for (const auto &[key, prov] : configs) {
            std::fprintf(f, "%s\n    \"%s\": {",
                         first_cfg ? "" : ",",
                         jsonEscape(key).c_str());
            first_cfg = false;
            std::vector<std::pair<std::string, std::string>> kv;
            if (prov.snapshot)
                kv = *prov.snapshot;
            else if (!isFileGpuSpec(prov.params->gpu))
                kv = gpuConfigKeyValues(
                    prov.params->resolveGpuConfig());
            else
                kv = {{"unavailable",
                       "file spec with no run-time snapshot"}};
            bool first_kv = true;
            for (const auto &[k, v] : kv) {
                std::fprintf(f, "%s\"%s\": \"%s\"",
                             first_kv ? "" : ", ",
                             jsonEscape(k).c_str(),
                             jsonEscape(v).c_str());
                first_kv = false;
            }
            std::fprintf(f, "}");
        }
        std::fprintf(f, "%s},\n", configs.empty() ? "" : "\n  ");
    }

    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const SweepResult &r = results[i];
        const UserParams &p = r.point.params;
        const RunOutcome &o = r.outcome;
        std::fprintf(
            f,
            "    {\"label\": \"%s\", \"variant\": \"%s\", "
            "\"gpu\": \"%s\", \"gpu_config\": \"%s\", "
            "\"framework\": \"%s\", \"model\": \"%s\", "
            "\"comp\": \"%s\", \"dataset\": \"%s\", "
            "\"engine\": \"%s\", \"ok\": %s",
            jsonEscape(r.point.label).c_str(),
            jsonEscape(r.point.variant).c_str(),
            jsonEscape(p.gpu).c_str(),
            p.engine == EngineKind::Sim
                ? jsonEscape(effectiveGpuKey(p)).c_str()
                : "",
            frameworkName(p.framework), gnnModelName(p.model),
            compModelName(p.comp), jsonEscape(p.dataset).c_str(),
            engineName(p.engine), r.ok ? "true" : "false");
        if (!r.ok)
            std::fprintf(f,
                         ", \"error\": \"%s\", "
                         "\"error_kind\": \"%s\"",
                         jsonEscape(r.error).c_str(),
                         runErrorName(r.errorKind));
        if (r.ok) {
            std::fprintf(f,
                         ",\n     \"end_to_end_us\": {\"mean\": %.3f, "
                         "\"min\": %.3f, \"max\": %.3f, \"samples\": ",
                         o.meanEndToEndUs, o.minEndToEndUs,
                         o.maxEndToEndUs);
            samples(o.endToEndSamplesUs);
            std::fprintf(f,
                         "},\n     \"kernel_us\": {\"mean\": %.3f, "
                         "\"samples\": ",
                         o.meanKernelUs);
            samples(o.kernelSamplesUs);
            std::fprintf(f, "}");
            if (!o.tracePath.empty())
                std::fprintf(f, ",\n     \"trace_path\": \"%s\"",
                             jsonEscape(o.tracePath).c_str());
            if (!o.metrics.empty()) {
                std::fprintf(f, ",\n     \"metrics\": {");
                bool first = true;
                for (const auto &[key, value] : o.metrics) {
                    std::fprintf(f, "%s\"%s\": %.6g",
                                 first ? "" : ", ",
                                 jsonEscape(key).c_str(), value);
                    first = false;
                }
                std::fprintf(f, "}");
            }
            if (!r.simByClass.empty()) {
                std::fprintf(f, ",\n     \"classes\": [");
                bool first = true;
                for (const auto &[cls, st] : r.simByClass) {
                    std::fprintf(
                        f,
                        "%s{\"class\": \"%s\", \"cycles\": %llu, "
                        "\"warp_instrs\": %llu, "
                        "\"l1_hit_rate\": %.4f, "
                        "\"l2_hit_rate\": %.4f, "
                        "\"trace_bytes_peak\": %llu",
                        first ? "" : ", ", kernelClassShortForm(cls),
                        static_cast<unsigned long long>(st.cycles),
                        static_cast<unsigned long long>(
                            st.warpInstrs),
                        st.l1HitRate(), st.l2HitRate(),
                        static_cast<unsigned long long>(
                            st.traceBytesPeak));
                    // Sampled-simulation estimates: only present when
                    // the class actually sampled, so off-mode output
                    // is byte-identical to before the field existed.
                    if (st.sampledCtas > 0) {
                        std::fprintf(
                            f,
                            ", \"sampled_ctas\": %lld, "
                            "\"sample_strata\": %d",
                            static_cast<long long>(st.sampledCtas),
                            st.sampleStrata);
                        for (const SampleEstimate &e : st.estimates)
                            std::fprintf(
                                f, ", \"est_%s\": %.6g, "
                                   "\"err_%s\": %.6g",
                                jsonEscape(e.name).c_str(), e.est,
                                jsonEscape(e.name).c_str(), e.err);
                    }
                    std::fprintf(f, "}");
                    first = false;
                }
                std::fprintf(f, "]");
            }
        }
        std::fprintf(f, "}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    if (std::fclose(f) != 0)
        fatal("write error on '%s'", path.c_str());
}

} // namespace gsuite
