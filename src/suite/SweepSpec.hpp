/**
 * @file
 * Declarative sweep grids — the multi-point face of the paper's
 * Fig. 1 user interface. A SweepSpec is a builder-style description
 * of a (framework x model x comp x dataset x engine x variant) grid
 * that expands to a deterministic, ordered list of UserParams points
 * with stable per-point labels. BenchSession executes the points;
 * ResultStore holds the results.
 */

#ifndef GSUITE_SUITE_SWEEPSPEC_HPP
#define GSUITE_SUITE_SWEEPSPEC_HPP

#include <functional>
#include <string>
#include <vector>

#include "suite/UserParams.hpp"

namespace gsuite {

/**
 * One value of the free-form sweep axis: a labelled parameter
 * override (e.g. a framework column, a feature-width step, or an
 * ablation toggle). Labels must be unique within a spec.
 */
struct SweepVariant {
    std::string label;
    std::function<void(UserParams &)> apply;
};

/** One expanded grid point. */
struct SweepPoint {
    size_t index = 0;    ///< position in expansion order
    std::string label;   ///< unique, stable point label
    std::string variant; ///< variant-axis label ("" when unused)
    UserParams params;
};

/**
 * A declarative grid over the suite's sweep axes. Unset axes
 * default to the base params' value (the dataset, gpu, and sample
 * axes additionally split comma-separated base values, the CLI sweep
 * shorthand), so an empty spec expands to exactly one point.
 * Expansion order is fixed and documented:
 * gpus > variants > frameworks > models > comps > engines >
 * datasets > samples > batches (outermost to innermost), each axis
 * in the order given.
 */
class SweepSpec
{
  public:
    /** Params every point starts from (defaults: UserParams{}). */
    SweepSpec &base(const UserParams &p);

    SweepSpec &datasets(const std::vector<DatasetId> &ids);
    /** Dataset names, including "file:PATH" edge lists. */
    SweepSpec &datasetNames(const std::vector<std::string> &names);
    SweepSpec &models(const std::vector<GnnModelKind> &ms);
    SweepSpec &comps(const std::vector<CompModel> &cs);
    SweepSpec &frameworks(const std::vector<Framework> &fs);
    SweepSpec &engines(const std::vector<EngineKind> &es);
    SweepSpec &engine(EngineKind e);
    SweepSpec &variants(std::vector<SweepVariant> vs);

    /**
     * Batched-inference axis: op-graph batch sizes (>= 1 each).
     * Innermost after datasets; labels gain an "xN" suffix whenever
     * the axis has more than one value.
     */
    SweepSpec &batches(const std::vector<int> &bs);

    /**
     * GPU axis: hwdb preset names or "file:PATH" specs, one machine
     * per value (the cross-GPU characterization axis). Labels are
     * prefixed "[gpu]" whenever the axis has more than one value.
     */
    SweepSpec &gpus(const std::vector<std::string> &specs);

    /**
     * CTA-sampling axis: applyCtaSampleSpec() specs ("off",
     * "cta:0.125", ...), one sampling policy per value — the
     * speedup-vs-error frontier axis. Labels gain a "~SPEC" suffix
     * whenever the axis has more than one value.
     */
    SweepSpec &samples(const std::vector<std::string> &specs);

    // Sugar for the base params benches tweak most often.
    SweepSpec &layers(int l);
    SweepSpec &runs(int r);
    SweepSpec &maxCtas(int64_t ctas);
    SweepSpec &profileCaches(bool on);

    /** Arbitrary base-params tweak, applied immediately. */
    SweepSpec &configure(const std::function<void(UserParams &)> &fn);

    /**
     * Drop expanded points the predicate matches (evaluated on the
     * final per-point params, after the variant override). May be
     * called repeatedly; predicates compose with OR.
     */
    SweepSpec &skip(const std::function<bool(const UserParams &)> &pred);

    /**
     * Expand to the ordered point list. Deterministic: same spec,
     * same points, same labels, same indices.
     */
    std::vector<SweepPoint> expand() const;

    /** Number of points expand() yields. */
    size_t size() const { return expand().size(); }

  private:
    UserParams baseParams;
    std::vector<std::string> gpuAxis;
    std::vector<std::string> sampleAxis;
    std::vector<std::string> dsAxis;
    std::vector<GnnModelKind> modelAxis;
    std::vector<CompModel> compAxis;
    std::vector<Framework> fwAxis;
    std::vector<EngineKind> engineAxis;
    std::vector<int> batchAxis;
    std::vector<SweepVariant> variantAxis;
    std::vector<std::function<bool(const UserParams &)>> skips;
};

} // namespace gsuite

#endif // GSUITE_SUITE_SWEEPSPEC_HPP
