#include "suite/UserParams.hpp"

#include <cstdio>
#include <set>

#include <cstdlib>

#include "frameworks/FrameworkAdapter.hpp"
#include "hwdb/HwPresets.hpp"
#include "util/Logging.hpp"
#include "util/StringUtils.hpp"

namespace gsuite {

EngineKind
engineKindFromName(const std::string &name)
{
    const std::string n = toLower(trim(name));
    if (n == "functional" || n == "hw" || n == "profiler")
        return EngineKind::Functional;
    if (n == "sim" || n == "simulator" || n == "gpgpusim")
        return EngineKind::Sim;
    fatal("unknown engine '%s' (known: functional, sim)", name.c_str());
}

bool
isFileDataset(const std::string &dataset)
{
    return startsWith(dataset, "file:");
}

std::string
fileDatasetPath(const std::string &dataset)
{
    return dataset.substr(5);
}

void
applyCtaSampleSpec(GpuConfig &cfg, const std::string &spec)
{
    const std::vector<std::string> parts = split(trim(spec), ':');
    if (parts.empty() || parts[0].empty())
        fatal("--sample expects off | cta[:fraction][:key=value...], "
              "got '%s'",
              spec.c_str());
    cfg.sampleMode = ctaSampleModeFromName(parts[0]);
    for (size_t i = 1; i < parts.size(); ++i) {
        const std::string &part = parts[i];
        const size_t eq = part.find('=');
        if (eq == std::string::npos) {
            double fraction;
            if (!parseDouble(part, fraction))
                fatal("--sample part '%s' is neither a fraction nor "
                      "key=value",
                      part.c_str());
            cfg.sampleFraction = fraction;
            continue;
        }
        const std::string key = toLower(trim(part.substr(0, eq)));
        const std::string value = trim(part.substr(eq + 1));
        if (key == "fraction") {
            if (!parseDouble(value, cfg.sampleFraction))
                fatal("--sample fraction expects a number, got '%s'",
                      value.c_str());
        } else if (key == "min_ctas") {
            int64_t v;
            if (!parseInt(value, v) || v < 1)
                fatal("--sample min_ctas expects a positive integer, "
                      "got '%s'",
                      value.c_str());
            cfg.sampleMinCtas = v;
        } else if (key == "seed") {
            int64_t v;
            if (!parseInt(value, v) || v < 0)
                fatal("--sample seed expects a non-negative integer, "
                      "got '%s'",
                      value.c_str());
            cfg.sampleSeed = static_cast<uint64_t>(v);
        } else {
            fatal("unknown --sample key '%s' (known: fraction, "
                  "min_ctas, seed)",
                  key.c_str());
        }
    }
    if (!(cfg.sampleFraction > 0.0) || cfg.sampleFraction > 1.0)
        fatal("--sample fraction must be in (0, 1]");
}

UserParams
UserParams::fromOptions(const OptionSet &opts)
{
    static const std::set<std::string> known = {
        "config",     "dataset",   "model",       "comp",
        "framework",  "engine",    "layers",      "hidden",
        "outdim",     "gineps",    "runs",        "seed",
        "batch",      "mem-plan",
        "profile-caches", "node-div", "edge-div", "feature-cap",
        "csv",        "verbose",   "quiet",       "trace",
        "sim-threads", "sim-parallel", "sweep-threads",
        "max-ctas",   "cycle-ceiling", "scheduler", "l1-bypass",
        "gpu",        "list-gpus",  "sample",
    };
    for (const auto &key : opts.keys()) {
        if (known.find(key) == known.end())
            fatal("unknown option '--%s'", key.c_str());
    }

    if (opts.getBool("list-gpus", false))
        listHwPresetsAndExit();

    UserParams p;
    p.dataset = opts.getString("dataset", p.dataset);
    // "file:PATH" datasets keep their (case-sensitive) path; names
    // are normalized and validated against the Table IV registry.
    // Comma-separated lists (sweep shorthand for datasetNames())
    // are validated per component.
    {
        std::string normalized;
        for (const std::string &part : splitDatasetList(p.dataset)) {
            if (!normalized.empty())
                normalized += ',';
            if (isFileDataset(part)) {
                if (fileDatasetPath(part).empty())
                    fatal("--dataset file: needs a path");
                normalized += part;
            } else if (isRmatDataset(part)) {
                // Validate and canonicalize so sweep labels and
                // graph-cache keys are stable.
                normalized += parseRmatSpec(part).canonical();
            } else {
                const std::string name = toLower(trim(part));
                datasetInfoByName(name); // validate early
                normalized += name;
            }
        }
        p.dataset = normalized;
    }
    p.model = gnnModelFromName(opts.getString("model", "gcn"));
    p.comp = compModelFromName(opts.getString("comp", "mp"));
    p.framework =
        frameworkFromName(opts.getString("framework", "gsuite"));
    p.engine = engineKindFromName(
        opts.getString("engine", "functional"));
    p.layers = static_cast<int>(opts.getInt("layers", p.layers));
    p.hidden = static_cast<int>(opts.getInt("hidden", p.hidden));
    p.outDim = static_cast<int>(opts.getInt("outdim", p.outDim));
    p.ginEps =
        static_cast<float>(opts.getDouble("gineps", p.ginEps));
    p.runs = static_cast<int>(opts.getInt("runs", p.runs));
    p.seed = static_cast<uint64_t>(opts.getInt("seed", 7));
    p.batch = static_cast<int>(opts.getInt("batch", p.batch));
    p.profileCaches = opts.getBool("profile-caches", false);
    p.memPlan = opts.getBool("mem-plan", p.memPlan);
    p.simThreads =
        static_cast<int>(opts.getInt("sim-threads", p.simThreads));
    p.simParallelLaunches = static_cast<int>(
        opts.getInt("sim-parallel", p.simParallelLaunches));
    p.sweepThreads = static_cast<int>(
        opts.getInt("sweep-threads", p.sweepThreads));
    p.maxCtas = opts.getInt("max-ctas", p.maxCtas);
    {
        const int64_t ceiling = opts.getInt("cycle-ceiling", 0);
        if (ceiling < 0)
            fatal("--cycle-ceiling must be >= 0");
        p.cycleCeiling = static_cast<uint64_t>(ceiling);
    }
    // The scheduler/l1-bypass overrides only engage when given, so
    // a preset's own policy survives an override-free run.
    if (opts.has("scheduler"))
        p.scheduler = schedulerPolicyFromName(
            opts.getString("scheduler"));
    if (opts.has("l1-bypass"))
        p.l1BypassLoads = opts.getBool("l1-bypass", false);
    // --sample: validate every comma component now so a sweep list
    // fails fast, but keep the list intact for SweepSpec to expand.
    p.sample = opts.getString("sample", p.sample);
    if (!p.sample.empty()) {
        for (const std::string &part : split(p.sample, ',')) {
            GpuConfig scratch;
            applyCtaSampleSpec(scratch, part);
        }
    }
    // Normalize --gpu: validate + canonicalize each component,
    // expand "all", install file-spec overhead overrides. A multi-
    // spec result stays comma-joined for SweepSpec to expand.
    p.gpu = join(expandGpuSpecs(opts.getString("gpu", p.gpu)), ',');
    p.nodeDivisor = opts.getInt("node-div", -1);
    p.edgeDivisor = opts.getInt("edge-div", -1);
    p.featureCap = opts.getInt("feature-cap", -1);
    p.csvOut = opts.getString("csv", "");
    p.tracePath = opts.getString("trace", "");

    if (opts.getBool("verbose", false))
        setLogLevel(LogLevel::Verbose);
    if (opts.getBool("quiet", false))
        setLogLevel(LogLevel::Quiet);

    if (p.layers < 1)
        fatal("--layers must be >= 1");
    if (p.runs < 1)
        fatal("--runs must be >= 1");
    if (p.batch < 1)
        fatal("--batch must be >= 1");
    if (p.simThreads < 0 || p.simParallelLaunches < 0)
        fatal("--sim-threads/--sim-parallel must be >= 0");
    if (p.sweepThreads < 0)
        fatal("--sweep-threads must be >= 0");
    if (p.maxCtas < 1)
        fatal("--max-ctas must be >= 1");
    return p;
}

UserParams
UserParams::fromArgs(int argc, const char *const *argv)
{
    // Two-phase parse: find --config first so the file provides the
    // defaults that explicit options then override.
    OptionSet cli;
    cli.parseArgs(argc, argv);

    OptionSet merged;
    if (cli.has("config"))
        merged.loadFile(cli.getString("config"));
    merged.parseArgs(argc, argv);
    if (cli.has("config"))
        merged.set("config", cli.getString("config"));
    return fromOptions(merged);
}

DatasetScale
UserParams::resolveScale() const
{
    DatasetScale s;
    // file:/rmat: datasets have no Table IV entry; they default to
    // identity scale with the explicit divisors applied on top.
    if (!isFileDataset(dataset) && !isRmatDataset(dataset)) {
        const DatasetInfo &info = datasetInfoByName(dataset);
        s = engine == EngineKind::Sim
                ? defaultSimScale(info.id)
                : defaultFunctionalScale(info.id);
    }
    if (nodeDivisor > 0)
        s.nodeDivisor = nodeDivisor;
    if (edgeDivisor > 0)
        s.edgeDivisor = edgeDivisor;
    if (featureCap >= 0)
        s.featureCap = featureCap;
    return s;
}

GpuConfig
UserParams::resolveGpuConfig() const
{
    GpuConfig cfg = resolveGpuSpec(gpu);
    if (scheduler)
        cfg.scheduler = *scheduler;
    if (l1BypassLoads)
        cfg.l1BypassLoads = *l1BypassLoads;
    if (!sample.empty()) {
        if (sample.find(',') != std::string::npos)
            fatal("resolveGpuConfig() on a --sample list '%s'; "
                  "sweeps must expand points first",
                  sample.c_str());
        applyCtaSampleSpec(cfg, sample);
    }
    cfg.validate();
    return cfg;
}

ModelConfig
UserParams::modelConfig() const
{
    ModelConfig cfg;
    cfg.model = model;
    cfg.comp = comp;
    cfg.layers = layers;
    cfg.hidden = hidden;
    cfg.outDim = outDim;
    cfg.ginEps = ginEps;
    cfg.seed = seed;
    return cfg;
}

std::string
UserParams::describe() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s/%s/%s on %s (%s engine, gpu=%s, L=%d, "
                  "hidden=%d%s)",
                  frameworkName(framework), gnnModelName(model),
                  compModelName(comp), dataset.c_str(),
                  engine == EngineKind::Sim ? "sim" : "functional",
                  gpu.c_str(), layers, hidden,
                  batch > 1
                      ? (", batch=" + std::to_string(batch)).c_str()
                      : "");
    return buf;
}

} // namespace gsuite
