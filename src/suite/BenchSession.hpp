/**
 * @file
 * BenchSession executes a SweepSpec: every expanded point runs
 * through a point runner (the default one reproduces the classic
 * BenchmarkRunner load-build-run-aggregate path), optionally
 * concurrently on a util/ThreadPool, with deterministic
 * index-ordered collection into a ResultStore and per-point failure
 * isolation — one throwing point reports its error; the sweep
 * continues.
 *
 * Threading-budget composition: with L concurrent sweep lanes and a
 * total worker budget B (default: max(L, host lanes)), every point
 * whose simThreads is "auto" (0) is resolved to max(1, B / L), and
 * auto simParallelLaunches collapse to 1, so sweep-level and
 * launch-level parallelism never multiply past the budget.
 */

#ifndef GSUITE_SUITE_BENCHSESSION_HPP
#define GSUITE_SUITE_BENCHSESSION_HPP

#include <functional>
#include <memory>

#include "suite/ResultStore.hpp"
#include "suite/SweepSpec.hpp"

namespace gsuite {

class GraphCache;

/** Executes SweepSpecs. */
class BenchSession
{
  public:
    /** Maps one point to its outcome; may throw to fail the point. */
    using PointRunner = std::function<RunOutcome(const SweepPoint &)>;

    /** Called after each point completes (under a session lock). */
    using Progress = std::function<void(const SweepResult &result,
                                        size_t done, size_t total)>;

    struct Options {
        /**
         * Concurrent sweep lanes: 1 = serial, 0 = auto (host lanes),
         * N = exactly N. ResultStore contents are identical for
         * every value when the point runner is deterministic (the
         * simulator path is; wall-clock fields always jitter).
         */
        int sweepThreads = 1;

        /**
         * Total worker budget shared by sweep lanes and per-launch
         * sim threads. 0 = auto: max(lanes, host lanes).
         */
        int threadBudget = 0;

        /**
         * Watchdog sim-cycle ceiling applied to every point whose
         * own params.cycleCeiling is unset (0): a sim kernel that
         * reaches it fails its point with RunError::Timeout instead
         * of hanging the sweep. Deterministic (cycle-domain).
         * 0 disables.
         */
        uint64_t pointCycleCeiling = 0;

        /**
         * Wall-clock watchdog per point, milliseconds. A session
         * thread raises the point's cancel flag past the deadline;
         * the simulator aborts at its next control phase with
         * RunError::Timeout. Only sim-engine work is interruptible
         * (functional kernels run to completion). The abort point is
         * timing-dependent, but failed points report no metrics, so
         * determinism of successful results holds. 0 disables.
         */
        int pointTimeoutMs = 0;

        /**
         * Capacity (graphs) of the per-session dataset cache used
         * by the default runner: sweep points sharing a
         * (dataset, scale, seed) load their graph once per session
         * instead of once per point (multi-GPU and multi-framework
         * grids hit this hard). 0 disables caching. Results are
         * bit-identical either way (the graph is immutable input).
         */
        size_t graphCacheEntries = 8;

        Progress progress; ///< optional per-point callback
    };

    BenchSession();
    explicit BenchSession(Options opts);
    ~BenchSession();
    BenchSession(BenchSession &&) noexcept;
    BenchSession &operator=(BenchSession &&) noexcept;

    /**
     * Run every point with the default benchmark runner (through
     * the session's graph cache).
     */
    ResultStore run(const SweepSpec &spec) const;

    /** Run every point with a custom runner. */
    ResultStore run(const SweepSpec &spec,
                    const PointRunner &runner) const;

    /**
     * The default single-point runner: load the dataset, build the
     * engine and framework adapter, run params.runs times, and
     * aggregate (with per-run samples).
     */
    static RunOutcome runPoint(const UserParams &params);

    /** runPoint on an already-loaded graph (the cached path). */
    static RunOutcome runPoint(const UserParams &params,
                               const Graph &graph);

    /** Graph-cache effectiveness counters (cumulative). */
    struct CacheStats {
        size_t hits = 0;
        size_t misses = 0;
        size_t evictions = 0;
    };
    CacheStats cacheStats() const;

  private:
    Options opts;
    /** Lives across run() calls; shared by concurrent lanes. */
    std::unique_ptr<GraphCache> cache;
};

} // namespace gsuite

#endif // GSUITE_SUITE_BENCHSESSION_HPP
