/**
 * @file
 * BenchSession executes a SweepSpec: every expanded point runs
 * through a point runner (the default one reproduces the classic
 * BenchmarkRunner load-build-run-aggregate path), optionally
 * concurrently on a util/ThreadPool, with deterministic
 * index-ordered collection into a ResultStore and per-point failure
 * isolation — one throwing point reports its error; the sweep
 * continues.
 *
 * Threading-budget composition: with L concurrent sweep lanes and a
 * total worker budget B (default: max(L, host lanes)), every point
 * whose simThreads is "auto" (0) is resolved to max(1, B / L), and
 * auto simParallelLaunches collapse to 1, so sweep-level and
 * launch-level parallelism never multiply past the budget.
 */

#ifndef GSUITE_SUITE_BENCHSESSION_HPP
#define GSUITE_SUITE_BENCHSESSION_HPP

#include <functional>

#include "suite/ResultStore.hpp"
#include "suite/SweepSpec.hpp"

namespace gsuite {

/** Executes SweepSpecs. */
class BenchSession
{
  public:
    /** Maps one point to its outcome; may throw to fail the point. */
    using PointRunner = std::function<RunOutcome(const SweepPoint &)>;

    /** Called after each point completes (under a session lock). */
    using Progress = std::function<void(const SweepResult &result,
                                        size_t done, size_t total)>;

    struct Options {
        /**
         * Concurrent sweep lanes: 1 = serial, 0 = auto (host lanes),
         * N = exactly N. ResultStore contents are identical for
         * every value when the point runner is deterministic (the
         * simulator path is; wall-clock fields always jitter).
         */
        int sweepThreads = 1;

        /**
         * Total worker budget shared by sweep lanes and per-launch
         * sim threads. 0 = auto: max(lanes, host lanes).
         */
        int threadBudget = 0;

        Progress progress; ///< optional per-point callback
    };

    BenchSession() = default;
    explicit BenchSession(Options opts) : opts(std::move(opts)) {}

    /** Run every point with the default benchmark runner. */
    ResultStore run(const SweepSpec &spec) const;

    /** Run every point with a custom runner. */
    ResultStore run(const SweepSpec &spec,
                    const PointRunner &runner) const;

    /**
     * The default single-point runner: load the dataset, build the
     * engine and framework adapter, run params.runs times, and
     * aggregate (with per-run samples).
     */
    static RunOutcome runPoint(const UserParams &params);

  private:
    Options opts;
};

} // namespace gsuite

#endif // GSUITE_SUITE_BENCHSESSION_HPP
