#include "suite/Runner.hpp"

#include <algorithm>

#include "util/Logging.hpp"

namespace gsuite {

std::unique_ptr<ExecutionEngine>
AbstractionModule::makeEngine(const UserParams &params)
{
    if (params.engine == EngineKind::Sim) {
        SimEngine::Options opts;
        opts.profileCaches = params.profileCaches;
        opts.sim.numThreads = params.simThreads;
        opts.parallelLaunches = params.simParallelLaunches;
        return std::make_unique<SimEngine>(opts);
    }
    FunctionalEngine::Options opts;
    opts.profileCaches = params.profileCaches;
    return std::make_unique<FunctionalEngine>(opts);
}

Graph
loadDatasetFor(const UserParams &params)
{
    return loadDataset(params.dataset, params.resolveScale(),
                       params.seed);
}

BenchmarkRunner::BenchmarkRunner(UserParams params)
    : params(std::move(params))
{
}

RunOutcome
BenchmarkRunner::run()
{
    RunOutcome outcome;
    outcome.params = params;
    outcome.scaleDescription = params.resolveScale().describe();

    const Graph graph = loadDatasetFor(params);
    outcome.graphSummary = graph.summary();

    const FrameworkAdapter adapter(params.framework);
    auto engine = AbstractionModule::makeEngine(params);

    double sum = 0.0;
    outcome.minEndToEndUs = 0.0;
    outcome.maxEndToEndUs = 0.0;
    double kernel_sum = 0.0;
    for (int r = 0; r < params.runs; ++r) {
        const FrameworkRunResult res =
            adapter.run(graph, params.modelConfig(), *engine);
        sum += res.endToEndUs;
        kernel_sum += res.kernelUs;
        if (r == 0) {
            outcome.minEndToEndUs = res.endToEndUs;
            outcome.maxEndToEndUs = res.endToEndUs;
        } else {
            outcome.minEndToEndUs =
                std::min(outcome.minEndToEndUs, res.endToEndUs);
            outcome.maxEndToEndUs =
                std::max(outcome.maxEndToEndUs, res.endToEndUs);
        }
        if (r == params.runs - 1)
            outcome.timeline = res.timeline;
    }
    outcome.meanEndToEndUs = sum / params.runs;
    outcome.meanKernelUs = kernel_sum / params.runs;
    return outcome;
}

std::map<KernelClass, double>
wallUsByClass(const std::vector<KernelRecord> &timeline)
{
    std::map<KernelClass, double> by_class;
    for (const auto &rec : timeline)
        by_class[rec.kind] += rec.wallUs;
    return by_class;
}

std::map<KernelClass, KernelStats>
simStatsByClass(const std::vector<KernelRecord> &timeline)
{
    std::map<KernelClass, KernelStats> by_class;
    for (const auto &rec : timeline) {
        if (!rec.hasSim)
            continue;
        auto it = by_class.find(rec.kind);
        if (it == by_class.end()) {
            by_class.emplace(rec.kind, rec.sim);
        } else {
            it->second.merge(rec.sim);
        }
    }
    return by_class;
}

} // namespace gsuite
