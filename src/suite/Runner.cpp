#include "suite/Runner.hpp"

#include "graph/EdgeListIo.hpp"
#include "suite/BenchSession.hpp"
#include "util/Logging.hpp"

namespace gsuite {

std::unique_ptr<ExecutionEngine>
AbstractionModule::makeEngine(const UserParams &params)
{
    if (params.engine == EngineKind::Sim)
        return makeEngine(params, params.resolveGpuConfig());
    FunctionalEngine::Options opts;
    opts.profileCaches = params.profileCaches;
    opts.hwConfig.numThreads = params.simThreads;
    opts.hwConfig.maxCtas = params.maxCtas;
    // Keep the profiler's CTA subset aligned with the machine this
    // point simulates (a single-spec gpu; sweep lists expand first).
    if (params.gpu.find(',') == std::string::npos) {
        const GpuConfig gpu = params.resolveGpuConfig();
        opts.hwConfig.numSms = gpu.numSms;
        opts.hwConfig.smSampleFactor = gpu.smSampleFactor;
    }
    auto engine = std::make_unique<FunctionalEngine>(opts);
    engine->setMemPlanMode(params.memPlan, params.simThreads);
    return engine;
}

std::unique_ptr<ExecutionEngine>
AbstractionModule::makeEngine(const UserParams &params,
                              const GpuConfig &gpu)
{
    SimEngine::Options opts;
    opts.gpu = gpu;
    opts.profileCaches = params.profileCaches;
    opts.hwConfig.numThreads = params.simThreads;
    opts.hwConfig.numSms = gpu.numSms;
    opts.hwConfig.smSampleFactor = gpu.smSampleFactor;
    opts.hwConfig.maxCtas = params.maxCtas;
    opts.sim.maxCtas = params.maxCtas;
    opts.sim.numThreads = params.simThreads;
    opts.sim.cycleCeiling = params.cycleCeiling;
    opts.sim.cancel = params.cancel;
    opts.parallelLaunches = params.simParallelLaunches;
    auto engine = std::make_unique<SimEngine>(opts);
    engine->setMemPlanMode(params.memPlan, params.simThreads);
    return engine;
}

Graph
loadDatasetFor(const UserParams &params)
{
    if (isFileDataset(params.dataset)) {
        const DatasetScale scale = params.resolveScale();
        const int64_t flen =
            scale.featureCap > 0 ? scale.featureCap : 16;
        return loadEdgeList(fileDatasetPath(params.dataset), flen,
                            params.seed);
    }
    if (isRmatDataset(params.dataset))
        return loadRmatDataset(parseRmatSpec(params.dataset),
                               params.resolveScale());
    return loadDataset(params.dataset, params.resolveScale(),
                       params.seed);
}

BenchmarkRunner::BenchmarkRunner(UserParams params)
    : params(std::move(params))
{
}

RunOutcome
BenchmarkRunner::run()
{
    // Thin compatibility wrapper: one-point sweep, serial session.
    BenchSession session;
    const ResultStore store =
        session.run(SweepSpec{}.base(params));
    const SweepResult &result = store.at(0);
    if (!result.ok)
        fatal("benchmark run failed: %s", result.error.c_str());
    return result.outcome;
}

std::map<KernelClass, double>
wallUsByClass(const std::vector<KernelRecord> &timeline)
{
    std::map<KernelClass, double> by_class;
    for (const auto &rec : timeline)
        by_class[rec.kind] += rec.wallUs;
    return by_class;
}

std::map<KernelClass, KernelStats>
simStatsByClass(const std::vector<KernelRecord> &timeline)
{
    std::map<KernelClass, KernelStats> by_class;
    for (const auto &rec : timeline) {
        if (!rec.hasSim)
            continue;
        auto it = by_class.find(rec.kind);
        if (it == by_class.end()) {
            by_class.emplace(rec.kind, rec.sim);
        } else {
            it->second.merge(rec.sim);
        }
    }
    return by_class;
}

} // namespace gsuite
