/**
 * @file
 * The benchmark runner — Fig. 1's Abstraction Module plus Data
 * Loader: resolves framework/model/dataset decisions, loads data,
 * builds the engine, runs the pipeline the configured number of
 * times, and aggregates results.
 */

#ifndef GSUITE_SUITE_RUNNER_HPP
#define GSUITE_SUITE_RUNNER_HPP

#include <map>
#include <memory>
#include <vector>

#include "engine/ExecutionEngine.hpp"
#include "frameworks/FrameworkAdapter.hpp"
#include "graph/Graph.hpp"
#include "suite/UserParams.hpp"

namespace gsuite {

/** Aggregated outcome of one benchmark configuration. */
struct RunOutcome {
    UserParams params;
    std::string graphSummary;
    std::string scaleDescription;

    double meanEndToEndUs = 0.0; ///< mean over runs (paper: 3 runs)
    double minEndToEndUs = 0.0;
    double maxEndToEndUs = 0.0;
    double meanKernelUs = 0.0;

    /**
     * Per-run end-to-end / kernel-time samples, one entry per run,
     * in run order (the mean/min/max above summarize these).
     */
    std::vector<double> endToEndSamplesUs;
    std::vector<double> kernelSamplesUs;

    /**
     * Named scalar results. The default runner attaches the
     * executed op-graph's deterministic overlap model on sim
     * points (graph_serial_cycles, graph_critical_path_cycles,
     * graph_makespan_cycles, graph_lanes, graph_levels — see
     * ExecutionEngine::run(OpGraph&)); custom point runners add
     * their own (e.g. training accuracy, paired-config speedups).
     * Emitted verbatim by ResultStore::toJson.
     */
    std::map<std::string, double> metrics;

    /**
     * hwdb key/value snapshot of the machine this point actually
     * simulated, captured at run time (sim engine points only) so
     * emitted provenance cannot drift from a config file edited or
     * deleted after the run.
     */
    std::vector<std::pair<std::string, std::string>>
        gpuConfigSnapshot;

    /**
     * Chrome-trace file this point wrote ("" when tracing was off).
     * Multi-point sessions derive per-point paths from
     * UserParams::tracePath; the path also lands in the results CSV
     * and JSON as trace_path.
     */
    std::string tracePath;

    /** Per-kernel timeline of the final run. */
    std::vector<KernelRecord> timeline;
};

/** Fig. 1's decision layer, exposed for reuse by benches. */
class AbstractionModule
{
  public:
    /** Build the engine the params ask for. */
    static std::unique_ptr<ExecutionEngine>
    makeEngine(const UserParams &params);

    /**
     * Same, with the machine already resolved — callers that also
     * record provenance (BenchSession::runPoint) resolve once and
     * pass it here, so a file: spec is parsed a single time and the
     * snapshot cannot diverge from the simulated config. Only
     * meaningful for sim-engine params.
     */
    static std::unique_ptr<ExecutionEngine>
    makeEngine(const UserParams &params, const GpuConfig &gpu);
};

/** Loads a dataset per the params (Fig. 1's Data Loader). */
Graph loadDatasetFor(const UserParams &params);

/** End-to-end benchmark runner. */
class BenchmarkRunner
{
  public:
    explicit BenchmarkRunner(UserParams params);

    /** Load, build, run `params.runs` times, aggregate. */
    RunOutcome run();

  private:
    UserParams params;
};

/** Wall-clock microseconds per kernel class over a timeline. */
std::map<KernelClass, double>
wallUsByClass(const std::vector<KernelRecord> &timeline);

/**
 * Merge simulator statistics of all timeline kernels of the same
 * class (e.g. every scatter launch of a pipeline), keyed by class.
 */
std::map<KernelClass, KernelStats>
simStatsByClass(const std::vector<KernelRecord> &timeline);

} // namespace gsuite

#endif // GSUITE_SUITE_RUNNER_HPP
