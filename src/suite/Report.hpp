/**
 * @file
 * Report writers: the output side of the Fig. 1 architecture. A
 * RunOutcome renders as an aligned console report and/or a CSV file,
 * with per-kernel rows and per-class aggregation.
 */

#ifndef GSUITE_SUITE_REPORT_HPP
#define GSUITE_SUITE_REPORT_HPP

#include <string>

#include "suite/Runner.hpp"

namespace gsuite {

/** Render the outcome as a human-readable multi-table report. */
std::string renderReport(const RunOutcome &outcome);

/** Print renderReport() to stdout. */
void printReport(const RunOutcome &outcome);

/**
 * Write the outcome's per-kernel timeline as CSV: kernel, class,
 * wall_us, and (when present) sim cycles plus headline sim metrics.
 * fatal() on I/O error.
 */
void writeReportCsv(const RunOutcome &outcome,
                    const std::string &path);

} // namespace gsuite

#endif // GSUITE_SUITE_REPORT_HPP
