#include "suite/BenchSession.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <new>
#include <thread>

#include "frameworks/FrameworkAdapter.hpp"
#include "hwdb/HwConfigFile.hpp"
#include "obs/TraceSink.hpp"
#include "util/Logging.hpp"
#include "util/ThreadPool.hpp"

namespace gsuite {

namespace {

/**
 * Wall-clock watchdog shared by a sweep's lanes: each point arms a
 * deadline tied to its cancel flag; one session thread raises the
 * flags of points past their deadline. The simulator polls the flag
 * once per control phase and fails the run with RunError::Timeout.
 */
class SweepWatchdog
{
  public:
    ~SweepWatchdog() { stop(); }

    uint64_t
    arm(std::atomic<bool> *flag, int timeoutMs)
    {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(timeoutMs);
        std::lock_guard<std::mutex> lock(mtx);
        const uint64_t id = nextId++;
        armed.emplace(id, Entry{deadline, flag});
        if (!thread.joinable())
            thread = std::thread([this] { watch(); });
        cv.notify_one();
        return id;
    }

    void
    disarm(uint64_t id)
    {
        std::lock_guard<std::mutex> lock(mtx);
        armed.erase(id);
    }

    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            stopping = true;
        }
        cv.notify_one();
        if (thread.joinable())
            thread.join();
    }

  private:
    struct Entry {
        std::chrono::steady_clock::time_point deadline;
        std::atomic<bool> *flag;
    };

    void
    watch()
    {
        std::unique_lock<std::mutex> lock(mtx);
        while (!stopping) {
            const auto now = std::chrono::steady_clock::now();
            auto next = now + std::chrono::hours(1);
            for (auto &[id, e] : armed) {
                if (e.deadline <= now)
                    e.flag->store(true, std::memory_order_relaxed);
                else
                    next = std::min(next, e.deadline);
            }
            cv.wait_until(lock, next);
        }
    }

    std::mutex mtx;
    std::condition_variable cv;
    std::map<uint64_t, Entry> armed;
    uint64_t nextId = 1;
    bool stopping = false;
    std::thread thread;
};

} // namespace

/**
 * Bounded, thread-safe (dataset, scale, seed) -> Graph cache.
 * Concurrent lanes asking for the same graph share one load (the
 * first requester loads outside the lock; the rest block on a
 * shared_future); distinct graphs load concurrently. Eviction is
 * LRU over the entry list — evicted graphs stay alive for points
 * still holding their shared_ptr.
 */
class GraphCache
{
  public:
    explicit GraphCache(size_t capacity) : capacity(capacity) {}

    std::shared_ptr<const Graph>
    get(const UserParams &params)
    {
        using GraphPtr = std::shared_ptr<const Graph>;
        const std::string key = cacheKey(params);
        std::promise<GraphPtr> promise;
        std::shared_future<GraphPtr> future;
        bool loader = false;
        uint64_t my_id = 0;
        {
            std::lock_guard<std::mutex> lock(mtx);
            auto it = entries.find(key);
            if (it != entries.end()) {
                ++statHits;
                touch(it->second);
                future = it->second.future;
            } else {
                ++statMisses;
                loader = true;
                future = promise.get_future().share();
                Entry entry;
                entry.future = future;
                entry.id = my_id = nextId++;
                lru.push_front(key);
                entry.lruPos = lru.begin();
                entries.emplace(key, std::move(entry));
                evictOverCapacity();
            }
        }
        if (loader) {
            try {
                promise.set_value(std::make_shared<const Graph>(
                    loadDatasetFor(params)));
            } catch (...) {
                // Propagate to every waiter, and forget *our* entry
                // (identity-checked: it may have been evicted and
                // the key re-inserted meanwhile) so a later point
                // may retry.
                promise.set_exception(std::current_exception());
                std::lock_guard<std::mutex> lock(mtx);
                auto it = entries.find(key);
                if (it != entries.end() &&
                    it->second.id == my_id) {
                    lru.erase(it->second.lruPos);
                    entries.erase(it);
                }
            }
        }
        return future.get();
    }

    BenchSession::CacheStats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return {statHits, statMisses, statEvictions};
    }

  private:
    struct Entry {
        std::shared_future<std::shared_ptr<const Graph>> future;
        std::list<std::string>::iterator lruPos;
        uint64_t id = 0; ///< insertion identity (erase guard)
    };

    static std::string
    cacheKey(const UserParams &params)
    {
        // Everything loadDatasetFor derives the graph from; scale
        // captures the resolved divisors and feature cap.
        return params.dataset + "|" +
               params.resolveScale().describe() + "|" +
               std::to_string(params.seed);
    }

    void
    touch(Entry &entry)
    {
        lru.splice(lru.begin(), lru, entry.lruPos);
    }

    void
    evictOverCapacity()
    {
        // Oldest-first, but only completed loads: evicting an
        // in-flight entry would let a second loader race the first.
        // If every older entry is still loading, run over capacity
        // until one settles.
        auto victim = lru.end();
        while (entries.size() > capacity) {
            victim = victim == lru.end() ? std::prev(lru.end())
                                         : std::prev(victim);
            auto it = entries.find(*victim);
            if (it->second.future.wait_for(
                    std::chrono::seconds(0)) !=
                std::future_status::ready) {
                if (victim == lru.begin())
                    break; // nothing evictable yet
                continue;
            }
            entries.erase(it);
            victim = lru.erase(victim);
            ++statEvictions;
        }
    }

    const size_t capacity;
    mutable std::mutex mtx;
    std::map<std::string, Entry> entries;
    std::list<std::string> lru; ///< front = most recent
    uint64_t nextId = 1;
    size_t statHits = 0, statMisses = 0, statEvictions = 0;
};

BenchSession::BenchSession() : BenchSession(Options{}) {}

BenchSession::BenchSession(Options opts_) : opts(std::move(opts_))
{
    if (opts.graphCacheEntries > 0)
        cache = std::make_unique<GraphCache>(opts.graphCacheEntries);
}

BenchSession::~BenchSession() = default;
BenchSession::BenchSession(BenchSession &&) noexcept = default;
BenchSession &
BenchSession::operator=(BenchSession &&) noexcept = default;

BenchSession::CacheStats
BenchSession::cacheStats() const
{
    return cache ? cache->stats() : CacheStats{};
}

RunOutcome
BenchSession::runPoint(const UserParams &params)
{
    return runPoint(params, loadDatasetFor(params));
}

RunOutcome
BenchSession::runPoint(const UserParams &params, const Graph &graph)
{
    RunOutcome outcome;
    outcome.params = params;
    outcome.scaleDescription = params.resolveScale().describe();
    outcome.graphSummary = graph.summary();

    const FrameworkAdapter adapter(params.framework);
    std::unique_ptr<ExecutionEngine> engine;
    std::unique_ptr<TraceSink> sink;
    std::string tracePath = params.tracePath;
    if (params.engine == EngineKind::Sim) {
        // Resolve the machine once: the engine and the provenance
        // snapshot must describe the same config even if a file:
        // spec changes on disk mid-sweep.
        const GpuConfig gpu = params.resolveGpuConfig();
        outcome.gpuConfigSnapshot = gpuConfigKeyValues(gpu);
        engine = AbstractionModule::makeEngine(params, gpu);
        // Tracing: --trace PATH forces it on; otherwise the resolved
        // machine's trace.enabled hwdb key does, with a default path.
        // Component selection and the sampled SM always come from
        // the machine (trace.components / trace.sampling_core).
        if (!tracePath.empty() || gpu.traceEnabled) {
            if (tracePath.empty())
                tracePath = "trace.json";
            TraceSinkOptions topts;
            topts.enabled = true;
            topts.components =
                parseTraceComponents(gpu.traceComponents);
            topts.samplingCore = gpu.traceSamplingCore;
            sink = std::make_unique<TraceSink>(topts);
        }
    } else {
        if (!tracePath.empty()) {
            warn("--trace needs the sim engine; no trace written "
                 "for this point");
            tracePath.clear();
        }
        engine = AbstractionModule::makeEngine(params);
    }

    double sum = 0.0;
    double kernel_sum = 0.0;
    outcome.endToEndSamplesUs.reserve(
        static_cast<size_t>(params.runs));
    outcome.kernelSamplesUs.reserve(static_cast<size_t>(params.runs));
    for (int r = 0; r < params.runs; ++r) {
        // Only the final (recorded) run is traced: earlier warm-up
        // runs would duplicate every span.
        if (sink && r == params.runs - 1)
            engine->setTraceSink(sink.get());
        const FrameworkRunResult res = adapter.run(
            graph, params.modelConfig(), *engine, params.batch);
        sum += res.endToEndUs;
        kernel_sum += res.kernelUs;
        outcome.endToEndSamplesUs.push_back(res.endToEndUs);
        outcome.kernelSamplesUs.push_back(res.kernelUs);
        if (r == 0) {
            outcome.minEndToEndUs = res.endToEndUs;
            outcome.maxEndToEndUs = res.endToEndUs;
        } else {
            outcome.minEndToEndUs =
                std::min(outcome.minEndToEndUs, res.endToEndUs);
            outcome.maxEndToEndUs =
                std::max(outcome.maxEndToEndUs, res.endToEndUs);
        }
        if (r == params.runs - 1) {
            outcome.timeline = res.timeline;
            // Deterministic overlap model of the executed op-graph
            // (identical across runs): how much launch-level
            // concurrency the dependency structure exposes.
            if (res.graph.hasSim) {
                outcome.metrics["graph_serial_cycles"] =
                    static_cast<double>(res.graph.serialCycles);
                outcome.metrics["graph_critical_path_cycles"] =
                    static_cast<double>(
                        res.graph.criticalPathCycles);
                outcome.metrics["graph_levels"] =
                    static_cast<double>(res.graph.levels);
                // The makespan depends on the lane count, which
                // "auto" (0) resolves from the host's core count —
                // emit it only when params pin the lanes, so
                // archived metrics stay machine-independent (CI
                // diffs them as blocking-exact).
                if (params.simParallelLaunches > 0) {
                    outcome.metrics["graph_makespan_cycles"] =
                        static_cast<double>(
                            res.graph.makespanCycles);
                    outcome.metrics["graph_lanes"] =
                        static_cast<double>(res.graph.lanes);
                }
            }
            // Planned vs naive peak footprint (src/memplan): pure
            // functions of the graph, identical in both placement
            // modes; present whenever every kernel declares its
            // spans (all six core kernels do).
            if (res.graph.memPeakNaiveBytes > 0) {
                outcome.metrics["mem_peak_planned_bytes"] =
                    static_cast<double>(
                        res.graph.memPeakPlannedBytes);
                outcome.metrics["mem_peak_naive_bytes"] =
                    static_cast<double>(
                        res.graph.memPeakNaiveBytes);
            }
        }
    }
    outcome.meanEndToEndUs = sum / params.runs;
    outcome.meanKernelUs = kernel_sum / params.runs;
    if (sink) {
        const auto t0 = std::chrono::steady_clock::now();
        sink->writeFile(tracePath);
        const auto t1 = std::chrono::steady_clock::now();
        outcome.tracePath = tracePath;
        // Exact-integer observability counters (CI diffs them as
        // blocking-deterministic); the write cost is wall clock and
        // stays warn-only.
        outcome.metrics["obs_events"] =
            static_cast<double>(sink->eventCount());
        outcome.metrics["obs_spans"] =
            static_cast<double>(sink->spanCount());
        outcome.metrics["obs_instants"] =
            static_cast<double>(sink->instantCount());
        outcome.metrics["obs_counters"] =
            static_cast<double>(sink->counterCount());
        outcome.metrics["trace_dropped_events"] =
            static_cast<double>(sink->droppedEvents());
        outcome.metrics["trace_write_ms"] =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();
        if (sink->droppedEvents() > 0)
            warn("trace %s dropped %llu events (raise "
                 "trackCapacity or narrow trace.components)",
                 tracePath.c_str(),
                 static_cast<unsigned long long>(
                     sink->droppedEvents()));
    }
    return outcome;
}

ResultStore
BenchSession::run(const SweepSpec &spec) const
{
    return run(spec, [this](const SweepPoint &pt) {
        if (!cache)
            return runPoint(pt.params);
        return runPoint(pt.params, *cache->get(pt.params));
    });
}

ResultStore
BenchSession::run(const SweepSpec &spec,
                  const PointRunner &runner) const
{
    const std::vector<SweepPoint> points = spec.expand();
    ResultStore store;
    store.resize(points.size());
    if (points.empty())
        return store;

    const int lanes = std::clamp(
        opts.sweepThreads > 0 ? opts.sweepThreads
                              : ThreadPool::defaultLanes(),
        1, static_cast<int>(points.size()));
    const int budget =
        opts.threadBudget > 0
            ? opts.threadBudget
            : std::max(lanes, ThreadPool::defaultLanes());

    SweepWatchdog watchdog;
    std::mutex mtx;
    size_t done = 0;
    auto runOne = [&](size_t i, int /*lane*/) {
        SweepPoint pt = points[i];
        // Every log line of this point (including from concurrent
        // lanes) carries its label.
        ScopedLogPrefix logScope(pt.label);
        // Multi-point sweeps write one trace per point: ".pN" goes
        // before the extension so trace.json -> trace.p3.json.
        if (!pt.params.tracePath.empty() && points.size() > 1) {
            std::string path = pt.params.tracePath;
            const size_t dot = path.find_last_of('.');
            const size_t slash = path.find_last_of('/');
            const std::string suffix =
                ".p" + std::to_string(i);
            if (dot != std::string::npos &&
                (slash == std::string::npos || dot > slash))
                path.insert(dot, suffix);
            else
                path += suffix;
            pt.params.tracePath = path;
        }
        if (lanes > 1) {
            // Compose budgets: sweep lanes share the worker budget,
            // so "auto" per-launch parallelism shrinks accordingly.
            if (pt.params.simThreads == 0)
                pt.params.simThreads = std::max(1, budget / lanes);
            if (pt.params.simParallelLaunches == 0)
                pt.params.simParallelLaunches = 1;
        }
        if (pt.params.cycleCeiling == 0)
            pt.params.cycleCeiling = opts.pointCycleCeiling;
        std::atomic<bool> cancelFlag{false};
        uint64_t armedId = 0;
        if (opts.pointTimeoutMs > 0) {
            pt.params.cancel = &cancelFlag;
            armedId =
                watchdog.arm(&cancelFlag, opts.pointTimeoutMs);
        }
        SweepResult result;
        result.point = pt;
        try {
            result.outcome = runner(pt);
            result.ok = true;
        } catch (const RunException &e) {
            result.error = e.what();
            result.errorKind = e.kind();
        } catch (const std::bad_alloc &) {
            result.error = "out of memory";
            result.errorKind = RunError::Oom;
        } catch (const std::exception &e) {
            result.error = e.what();
            result.errorKind = RunError::Unknown;
        } catch (...) {
            result.error = "unknown exception";
            result.errorKind = RunError::Unknown;
        }
        if (armedId)
            watchdog.disarm(armedId);
        // Custom runners may not implement tracing; never let a
        // requested --trace vanish silently. (Functional points get
        // their own warn from runPoint.)
        if (result.ok && !pt.params.tracePath.empty() &&
            pt.params.engine == EngineKind::Sim &&
            result.outcome.tracePath.empty())
            warn("point '%s': --trace requested but this bench's "
                 "runner wrote no trace",
                 pt.label.c_str());
        // The flag dies with this frame; the stored point must not
        // carry a dangling pointer.
        result.point.params.cancel = nullptr;
        if (!result.ok)
            warn("sweep point '%s' failed [%s]: %s",
                 pt.label.c_str(), runErrorName(result.errorKind),
                 result.error.c_str());
        store.put(std::move(result));
        if (opts.progress) {
            std::lock_guard<std::mutex> lock(mtx);
            ++done;
            opts.progress(store.at(i), done, points.size());
        }
    };

    if (lanes <= 1) {
        for (size_t i = 0; i < points.size(); ++i)
            runOne(i, 0);
    } else {
        ThreadPool pool(lanes);
        pool.parallelFor(points.size(), runOne);
    }
    return store;
}

} // namespace gsuite
