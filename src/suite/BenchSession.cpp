#include "suite/BenchSession.hpp"

#include <algorithm>
#include <mutex>

#include "frameworks/FrameworkAdapter.hpp"
#include "util/Logging.hpp"
#include "util/ThreadPool.hpp"

namespace gsuite {

RunOutcome
BenchSession::runPoint(const UserParams &params)
{
    RunOutcome outcome;
    outcome.params = params;
    outcome.scaleDescription = params.resolveScale().describe();

    const Graph graph = loadDatasetFor(params);
    outcome.graphSummary = graph.summary();

    const FrameworkAdapter adapter(params.framework);
    auto engine = AbstractionModule::makeEngine(params);

    double sum = 0.0;
    double kernel_sum = 0.0;
    outcome.endToEndSamplesUs.reserve(
        static_cast<size_t>(params.runs));
    outcome.kernelSamplesUs.reserve(static_cast<size_t>(params.runs));
    for (int r = 0; r < params.runs; ++r) {
        const FrameworkRunResult res =
            adapter.run(graph, params.modelConfig(), *engine);
        sum += res.endToEndUs;
        kernel_sum += res.kernelUs;
        outcome.endToEndSamplesUs.push_back(res.endToEndUs);
        outcome.kernelSamplesUs.push_back(res.kernelUs);
        if (r == 0) {
            outcome.minEndToEndUs = res.endToEndUs;
            outcome.maxEndToEndUs = res.endToEndUs;
        } else {
            outcome.minEndToEndUs =
                std::min(outcome.minEndToEndUs, res.endToEndUs);
            outcome.maxEndToEndUs =
                std::max(outcome.maxEndToEndUs, res.endToEndUs);
        }
        if (r == params.runs - 1)
            outcome.timeline = res.timeline;
    }
    outcome.meanEndToEndUs = sum / params.runs;
    outcome.meanKernelUs = kernel_sum / params.runs;
    return outcome;
}

ResultStore
BenchSession::run(const SweepSpec &spec) const
{
    return run(spec, [](const SweepPoint &pt) {
        return runPoint(pt.params);
    });
}

ResultStore
BenchSession::run(const SweepSpec &spec,
                  const PointRunner &runner) const
{
    const std::vector<SweepPoint> points = spec.expand();
    ResultStore store;
    store.resize(points.size());
    if (points.empty())
        return store;

    const int lanes = std::clamp(
        opts.sweepThreads > 0 ? opts.sweepThreads
                              : ThreadPool::defaultLanes(),
        1, static_cast<int>(points.size()));
    const int budget =
        opts.threadBudget > 0
            ? opts.threadBudget
            : std::max(lanes, ThreadPool::defaultLanes());

    std::mutex mtx;
    size_t done = 0;
    auto runOne = [&](size_t i, int /*lane*/) {
        SweepPoint pt = points[i];
        if (lanes > 1) {
            // Compose budgets: sweep lanes share the worker budget,
            // so "auto" per-launch parallelism shrinks accordingly.
            if (pt.params.simThreads == 0)
                pt.params.simThreads = std::max(1, budget / lanes);
            if (pt.params.simParallelLaunches == 0)
                pt.params.simParallelLaunches = 1;
        }
        SweepResult result;
        result.point = pt;
        try {
            result.outcome = runner(pt);
            result.ok = true;
        } catch (const std::exception &e) {
            result.error = e.what();
        } catch (...) {
            result.error = "unknown exception";
        }
        if (!result.ok)
            warn("sweep point '%s' failed: %s", pt.label.c_str(),
                 result.error.c_str());
        store.put(std::move(result));
        if (opts.progress) {
            std::lock_guard<std::mutex> lock(mtx);
            ++done;
            opts.progress(store.at(i), done, points.size());
        }
    };

    if (lanes <= 1) {
        for (size_t i = 0; i < points.size(); ++i)
            runOne(i, 0);
    } else {
        ThreadPool pool(lanes);
        pool.parallelFor(points.size(), runOne);
    }
    return store;
}

} // namespace gsuite
