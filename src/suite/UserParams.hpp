/**
 * @file
 * The paper's "User Parameters" / "User Interface" layer (Fig. 1):
 * a GNN pipeline described by a handful of parameters, coming from a
 * defaults config file overridden by command-line options.
 */

#ifndef GSUITE_SUITE_USERPARAMS_HPP
#define GSUITE_SUITE_USERPARAMS_HPP

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "frameworks/Overheads.hpp"
#include "graph/Datasets.hpp"
#include "models/GnnModel.hpp"
#include "simgpu/GpuConfig.hpp"
#include "util/Options.hpp"

namespace gsuite {

/** Which measurement backend executes the pipeline. */
enum class EngineKind {
    Functional, ///< host execution + wall clock (the "real GPU" path)
    Sim,        ///< timing simulation (the "GPGPU-Sim" path)
};

/** Parse "functional"/"sim"; fatal() on unknown names. */
EngineKind engineKindFromName(const std::string &name);

/**
 * True if @p dataset names an on-disk edge list ("file:PATH") rather
 * than a Table IV generator.
 */
bool isFileDataset(const std::string &dataset);

/** The PATH part of a "file:PATH" dataset name. */
std::string fileDatasetPath(const std::string &dataset);

/**
 * Apply a --sample spec to @p cfg's sample.* keys. Grammar (':'
 * separated so ',' stays the sweep-axis separator):
 *
 *     off
 *     cta
 *     cta:0.125                 (fraction shorthand)
 *     cta:fraction=F:min_ctas=N:seed=K
 *
 * fatal() on malformed specs.
 */
void applyCtaSampleSpec(GpuConfig &cfg, const std::string &spec);

/** Everything a gSuite run is parameterized by. */
struct UserParams {
    /**
     * Table IV dataset name ("cora", "LJ", ...) or "file:PATH" for a
     * SNAP-style edge list loaded via graph/EdgeListIo.
     */
    std::string dataset = "cora";

    /**
     * Hardware model for the timing simulator: an hwdb preset name
     * ("v100-sim", "rtx2060s", "p100", "a100", ...) or "file:PATH"
     * for a gpgpusim-style hwdb config file. May hold a
     * comma-separated list as sweep shorthand — SweepSpec expands it
     * into a GPU axis; single-point resolution rejects lists.
     */
    std::string gpu = "v100-sim";

    GnnModelKind model = GnnModelKind::Gcn;
    CompModel comp = CompModel::Mp;
    Framework framework = Framework::Gsuite;
    EngineKind engine = EngineKind::Functional;

    int layers = 2;
    int hidden = 16;
    int outDim = 8;
    float ginEps = 0.1f;
    int runs = 3; ///< paper: "run three times; mean values collected"
    uint64_t seed = 7;

    /**
     * Batched inference: independent pipeline instances composed
     * into one op-graph per run (OpGraph::merge), their roots
     * issued concurrently. 1 = the classic single-request pipeline.
     * Per-replica statistics stay bit-identical to batch=1.
     */
    int batch = 1;

    bool profileCaches = false;

    /**
     * Plan-backed placement (--mem-plan): run(OpGraph&) plans the
     * device address layout from graph structure (src/memplan),
     * executes levels concurrently in the functional phase, and
     * reports planned/naive peak bytes. Off by default — naive
     * execution-order placement stays the A/B oracle; statistics
     * are bit-identical either way.
     */
    bool memPlan = false;

    /**
     * Worker threads per simulated launch (0 = auto). Statistics are
     * bit-identical for every value.
     */
    int simThreads = 0;
    /**
     * Independent launches simulated concurrently by the sim engine
     * (1 = serial, 0 = auto).
     */
    int simParallelLaunches = 1;

    /**
     * Sweep points executed concurrently by a BenchSession
     * (1 = serial, 0 = auto). BenchSession composes this with the
     * per-launch simThreads budget so the total worker count stays
     * bounded (see src/suite/README.md).
     */
    int sweepThreads = 1;

    /** CTA sampling cap forwarded to the timing simulator. */
    int64_t maxCtas = 2048;

    /**
     * Watchdog: fail a sim run with RunError::Timeout once any
     * kernel reaches this many simulated cycles. 0 disables. The
     * failure is deterministic (cycle-domain, not wall-clock).
     */
    uint64_t cycleCeiling = 0;

    /**
     * Watchdog cancel flag forwarded to the simulator; not a CLI
     * option — BenchSession installs a per-point flag that its
     * wall-clock watchdog raises. Non-owning.
     */
    const std::atomic<bool> *cancel = nullptr;
    /**
     * Warp scheduler override. Unset (the default) defers to the
     * gpu preset/file; --scheduler or an ablation variant engages
     * it on top of whatever machine the point runs on.
     */
    std::optional<SchedulerPolicy> scheduler;
    /** Ablation override: route global loads straight to L2. */
    std::optional<bool> l1BypassLoads;

    /**
     * CTA-sampling override (--sample): a spec for
     * applyCtaSampleSpec(), applied on top of the gpu preset/file's
     * sample.* keys. Empty (the default) defers to the preset. May
     * hold a comma-separated list as sweep shorthand — SweepSpec
     * expands it into the sample axis; single-point resolution
     * rejects lists.
     */
    std::string sample;

    /** Dataset scaling: <0 means "use the engine-appropriate
     *  default" (defaultSimScale / defaultFunctionalScale). */
    int64_t nodeDivisor = -1;
    int64_t edgeDivisor = -1;
    int64_t featureCap = -1;

    std::string csvOut; ///< optional CSV path for results

    /**
     * Chrome-trace output (--trace PATH): each executed point writes
     * a Perfetto-loadable trace of its final measurement run (see
     * src/obs/README.md). Multi-point sessions derive per-point
     * paths by suffixing ".pN" before the extension. Empty = no
     * trace unless the resolved gpu config sets trace.enabled, in
     * which case "trace.json" is used.
     */
    std::string tracePath;

    /**
     * Build params from an option set (config file + CLI merged).
     * Unknown keys are rejected with fatal() so typos surface.
     */
    static UserParams fromOptions(const OptionSet &opts);

    /**
     * Parse argv. "--config FILE" is loaded first (defaults), then
     * the remaining options override it, exactly as the paper's
     * interface behaves.
     */
    static UserParams fromArgs(int argc, const char *const *argv);

    /** The dataset scale this run should use. */
    DatasetScale resolveScale() const;

    /**
     * The machine this point simulates: the gpu preset/file resolved
     * through hwdb, with the scheduler/l1-bypass overrides (when
     * engaged) applied on top. Validated; fatal() on a comma list
     * (sweeps must expand first) or an unresolvable spec.
     */
    GpuConfig resolveGpuConfig() const;

    /** Model hyperparameters as a ModelConfig. */
    ModelConfig modelConfig() const;

    /** One-line description for logs and bench output. */
    std::string describe() const;
};

} // namespace gsuite

#endif // GSUITE_SUITE_USERPARAMS_HPP
