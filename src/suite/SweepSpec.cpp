#include "suite/SweepSpec.hpp"

#include <set>

#include "frameworks/FrameworkAdapter.hpp"
#include "util/Logging.hpp"
#include "util/StringUtils.hpp"

namespace gsuite {

SweepSpec &
SweepSpec::base(const UserParams &p)
{
    baseParams = p;
    return *this;
}

SweepSpec &
SweepSpec::datasets(const std::vector<DatasetId> &ids)
{
    dsAxis.clear();
    for (const DatasetId id : ids)
        dsAxis.push_back(datasetInfo(id).name);
    return *this;
}

SweepSpec &
SweepSpec::datasetNames(const std::vector<std::string> &names)
{
    dsAxis = names;
    return *this;
}

SweepSpec &
SweepSpec::models(const std::vector<GnnModelKind> &ms)
{
    modelAxis = ms;
    return *this;
}

SweepSpec &
SweepSpec::comps(const std::vector<CompModel> &cs)
{
    compAxis = cs;
    return *this;
}

SweepSpec &
SweepSpec::frameworks(const std::vector<Framework> &fs)
{
    fwAxis = fs;
    return *this;
}

SweepSpec &
SweepSpec::engines(const std::vector<EngineKind> &es)
{
    engineAxis = es;
    return *this;
}

SweepSpec &
SweepSpec::engine(EngineKind e)
{
    engineAxis = {e};
    return *this;
}

SweepSpec &
SweepSpec::variants(std::vector<SweepVariant> vs)
{
    variantAxis = std::move(vs);
    return *this;
}

SweepSpec &
SweepSpec::batches(const std::vector<int> &bs)
{
    for (const int b : bs)
        if (b < 1)
            fatal("batch axis values must be >= 1 (got %d)", b);
    batchAxis = bs;
    return *this;
}

SweepSpec &
SweepSpec::gpus(const std::vector<std::string> &specs)
{
    gpuAxis = specs;
    return *this;
}

SweepSpec &
SweepSpec::samples(const std::vector<std::string> &specs)
{
    sampleAxis = specs;
    return *this;
}

SweepSpec &
SweepSpec::layers(int l)
{
    baseParams.layers = l;
    return *this;
}

SweepSpec &
SweepSpec::runs(int r)
{
    baseParams.runs = r;
    return *this;
}

SweepSpec &
SweepSpec::maxCtas(int64_t ctas)
{
    baseParams.maxCtas = ctas;
    return *this;
}

SweepSpec &
SweepSpec::profileCaches(bool on)
{
    baseParams.profileCaches = on;
    return *this;
}

SweepSpec &
SweepSpec::configure(const std::function<void(UserParams &)> &fn)
{
    fn(baseParams);
    return *this;
}

SweepSpec &
SweepSpec::skip(const std::function<bool(const UserParams &)> &pred)
{
    skips.push_back(pred);
    return *this;
}

std::vector<SweepPoint>
SweepSpec::expand() const
{
    // The dataset and gpu axes honour comma-separated base values —
    // the CLI sweep shorthand ("--dataset cora,pubmed",
    // "--gpu v100-sim,a100").
    const std::vector<std::string> ds =
        dsAxis.empty() ? splitDatasetList(baseParams.dataset)
                       : dsAxis;
    const std::vector<std::string> gpus =
        gpuAxis.empty() ? split(baseParams.gpu, ',') : gpuAxis;
    const std::vector<std::string> samples =
        sampleAxis.empty()
            ? (baseParams.sample.empty()
                   ? std::vector<std::string>{""}
                   : split(baseParams.sample, ','))
            : sampleAxis;
    const std::vector<GnnModelKind> models =
        modelAxis.empty()
            ? std::vector<GnnModelKind>{baseParams.model}
            : modelAxis;
    const std::vector<CompModel> comps =
        compAxis.empty() ? std::vector<CompModel>{baseParams.comp}
                         : compAxis;
    const std::vector<Framework> fws =
        fwAxis.empty() ? std::vector<Framework>{baseParams.framework}
                       : fwAxis;
    const std::vector<EngineKind> engines =
        engineAxis.empty()
            ? std::vector<EngineKind>{baseParams.engine}
            : engineAxis;
    const std::vector<int> batches =
        batchAxis.empty() ? std::vector<int>{baseParams.batch}
                          : batchAxis;
    std::vector<SweepVariant> vars = variantAxis;
    if (vars.empty())
        vars.push_back(SweepVariant{"", nullptr});

    {
        std::set<std::string> labels;
        for (const SweepVariant &v : vars)
            if (!labels.insert(v.label).second)
                fatal("duplicate sweep variant label '%s'",
                      v.label.c_str());
    }
    {
        std::set<std::string> seen;
        for (const std::string &g : gpus)
            if (!seen.insert(g).second)
                fatal("duplicate gpu axis entry '%s'", g.c_str());
    }
    {
        std::set<std::string> seen;
        for (const std::string &s : samples)
            if (!seen.insert(s).second)
                fatal("duplicate sample axis entry '%s'", s.c_str());
    }

    std::vector<SweepPoint> points;
    points.reserve(gpus.size() * vars.size() * fws.size() *
                   models.size() * comps.size() * engines.size() *
                   ds.size() * samples.size() * batches.size());
    for (const std::string &g : gpus) {
      for (const SweepVariant &v : vars) {
        for (const Framework fw : fws) {
            for (const GnnModelKind m : models) {
                for (const CompModel c : comps) {
                    for (const EngineKind e : engines) {
                        for (const std::string &d : ds) {
                          for (const std::string &sm : samples) {
                          for (const int b : batches) {
                            UserParams p = baseParams;
                            p.gpu = g;
                            p.framework = fw;
                            p.model = m;
                            p.comp = c;
                            p.engine = e;
                            p.dataset = d;
                            p.sample = sm;
                            p.batch = b;
                            if (v.apply)
                                v.apply(p);

                            bool skipped = false;
                            for (const auto &pred : skips)
                                skipped = skipped || pred(p);
                            if (skipped)
                                continue;

                            SweepPoint pt;
                            pt.index = points.size();
                            pt.variant = v.label;
                            std::string label;
                            if (gpus.size() > 1)
                                label += "[" + g + "]";
                            if (!v.label.empty())
                                label += v.label + ":";
                            label += frameworkName(fw);
                            label += "/";
                            label += gnnModelName(m);
                            label += "/";
                            label += compModelName(c);
                            label += "/";
                            label += d;
                            if (engines.size() > 1)
                                label += e == EngineKind::Sim
                                             ? "@sim"
                                             : "@functional";
                            if (samples.size() > 1)
                                label += "~" +
                                         (sm.empty()
                                              ? std::string("off")
                                              : sm);
                            if (batches.size() > 1)
                                label += "x" + std::to_string(b);
                            pt.label = std::move(label);
                            pt.params = std::move(p);
                            points.push_back(std::move(pt));
                          }
                          }
                        }
                    }
                }
            }
        }
      }
    }
    return points;
}

} // namespace gsuite
