/**
 * @file
 * GNN training — the paper's stated future work ("we plan to extend
 * our benchmark suite by adding support for GNN-Training, which
 * includes the implementation of training-related aspects such as
 * neuron layers, propagations, weights") implemented on the same
 * core-kernel substrate, for GCN and GIN.
 *
 * GCN layer forward:  AH = SpMM(A_norm, H); Z = sgemm(AH, W);
 *                     H' = relu(Z)  (last layer: logits)
 * GIN layer forward:  S = SpMM(A_gin, H); Z1 = sgemm(S, W1);
 *                     R = relu(Z1); Z2 = sgemm(R, W2); H' = relu(Z2)
 * Loss:               softmax cross-entropy over synthetic labels
 * Backward:           transposed-operand sgemm for the weight grads,
 *                     SpMM on the transposed adjacency for the
 *                     feature grads, ReluGrad gates
 * Update:             W -= lr * dW  (AddScaled kernels)
 *
 * Every step is a Kernel, so training epochs run through the same
 * engines — and are therefore characterizable on the timing
 * simulator exactly like inference.
 */

#ifndef GSUITE_TRAINING_GCNTRAINER_HPP
#define GSUITE_TRAINING_GCNTRAINER_HPP

#include <memory>
#include <vector>

#include "engine/ExecutionEngine.hpp"
#include "graph/Graph.hpp"
#include "kernels/Kernel.hpp"
#include "models/GnnModel.hpp"
#include "sparse/Csr.hpp"
#include "tensor/DenseMatrix.hpp"
#include "training/SoftmaxXent.hpp"

namespace gsuite {

/** Training hyperparameters. */
struct TrainConfig {
    /** Model to train: Gcn or Gin (fatal otherwise). */
    GnnModelKind model = GnnModelKind::Gcn;
    int epochs = 20;
    /** Full-batch SGD step; gradients are mean-scaled (1/n). */
    float lr = 2.0f;
    int layers = 2;
    int hidden = 16;
    int classes = 4;
    float ginEps = 0.1f;
    uint64_t seed = 42;
    /** Disable the SGD kernels (gradient checking needs frozen W). */
    bool applyUpdates = true;
};

/** Per-epoch training measurements. */
struct EpochStats {
    double loss = 0.0;
    double accuracy = 0.0;
    double kernelUs = 0.0;
};

/** A full-batch GNN trainer built from core kernels. */
class GnnTrainer
{
  public:
    /** Build the per-epoch kernel pipeline for @p graph. */
    GnnTrainer(const Graph &graph, const TrainConfig &cfg);

    /** Run one epoch through @p engine (timeline is cleared). */
    EpochStats runEpoch(ExecutionEngine &engine);

    /** Run cfg.epochs epochs and return their statistics. */
    std::vector<EpochStats> train(ExecutionEngine &engine);

    /** Number of kernels per epoch. */
    size_t numKernels() const { return kernels.size(); }

    /** Layer weights (mutable for gradient-check perturbation). */
    DenseMatrix &weightAt(size_t i) { return *weightPtrs[i]; }
    size_t numWeights() const { return weightPtrs.size(); }

    /** Weight gradients of the most recent epoch (same order). */
    const DenseMatrix &gradientAt(size_t i) const
    {
        return *gradPtrs[i];
    }

    /** Final-layer logits of the most recent epoch. */
    const DenseMatrix &logits() const { return *logitsBuf; }

    /** The synthetic labels being fit. */
    const std::vector<int64_t> &labels() const { return labelVec; }

  private:
    const Graph &graph;
    TrainConfig cfg;
    std::vector<int64_t> labelVec;

    std::vector<std::unique_ptr<DenseMatrix>> mats;
    std::vector<std::unique_ptr<CsrMatrix>> csrs;
    std::vector<std::unique_ptr<Kernel>> kernels;
    std::vector<DenseMatrix *> weightPtrs;
    std::vector<DenseMatrix *> gradPtrs;
    DenseMatrix *logitsBuf = nullptr;
    SoftmaxXentKernel *lossKernel = nullptr;

    DenseMatrix *newMat(int64_t r = 0, int64_t c = 0);
    void buildGcn();
    void buildGin();
};

/** Backward-compatible alias (the original GCN-only trainer name). */
using GcnTrainer = GnnTrainer;

} // namespace gsuite

#endif // GSUITE_TRAINING_GCNTRAINER_HPP
