/**
 * @file
 * Synthetic node labels for the training extension.
 *
 * Real planetoid labels are unavailable (DESIGN.md §4), so labels are
 * derived from graph structure: each node takes the class of its
 * highest-degree in-neighbour (hub), falling back to a hash of its
 * own id. This gives classes that correlate with the topology, so a
 * GNN can actually reduce the loss — which is what the training
 * benchmarks need to exercise realistic convergence behaviour.
 */

#ifndef GSUITE_TRAINING_LABELS_HPP
#define GSUITE_TRAINING_LABELS_HPP

#include <cstdint>
#include <vector>

#include "graph/Graph.hpp"

namespace gsuite {

/** Deterministic structure-correlated labels in [0, num_classes). */
std::vector<int64_t> makeSyntheticLabels(const Graph &graph,
                                         int64_t num_classes,
                                         uint64_t seed = 7);

} // namespace gsuite

#endif // GSUITE_TRAINING_LABELS_HPP
