#include "training/Labels.hpp"

#include "util/Logging.hpp"
#include "util/Random.hpp"

namespace gsuite {

std::vector<int64_t>
makeSyntheticLabels(const Graph &graph, int64_t num_classes,
                    uint64_t seed)
{
    if (num_classes < 2)
        fatal("need at least two classes for labels");
    const int64_t n = graph.numNodes();
    const std::vector<int64_t> deg = graph.inDegrees();

    // Highest-degree in-neighbour per node.
    std::vector<int64_t> hub(static_cast<size_t>(n), -1);
    for (int64_t e = 0; e < graph.numEdges(); ++e) {
        const int64_t u = graph.src[static_cast<size_t>(e)];
        const int64_t v = graph.dst[static_cast<size_t>(e)];
        if (hub[static_cast<size_t>(v)] < 0 ||
            deg[static_cast<size_t>(u)] >
                deg[static_cast<size_t>(
                    hub[static_cast<size_t>(v)])])
            hub[static_cast<size_t>(v)] = u;
    }

    Rng rng(seed);
    std::vector<int64_t> labels(static_cast<size_t>(n));
    for (int64_t v = 0; v < n; ++v) {
        const int64_t anchor =
            hub[static_cast<size_t>(v)] >= 0
                ? hub[static_cast<size_t>(v)]
                : v;
        // Mix so class sizes stay balanced even with few hubs.
        labels[static_cast<size_t>(v)] = static_cast<int64_t>(
            (static_cast<uint64_t>(anchor) * 0x9e3779b97f4a7c15ULL >>
             32) %
            static_cast<uint64_t>(num_classes));
    }
    return labels;
}

} // namespace gsuite
