#include "training/SoftmaxXent.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/Logging.hpp"

namespace gsuite {

SoftmaxXentKernel::SoftmaxXentKernel(std::string label,
                                     const DenseMatrix &logits,
                                     const std::vector<int64_t> &labels,
                                     DenseMatrix &dlogits)
    : label(std::move(label)), logits(logits), labels(labels),
      dlogits(dlogits)
{
}

void
SoftmaxXentKernel::execute()
{
    const int64_t n = logits.rows();
    const int64_t c = logits.cols();
    panicIf(static_cast<int64_t>(labels.size()) != n,
            "label count != node count");
    dlogits.resize(n, c);

    double loss_sum = 0.0;
    int64_t correct = 0;
    for (int64_t i = 0; i < n; ++i) {
        const float *row = logits.rowPtr(i);
        const int64_t y = labels[static_cast<size_t>(i)];
        panicIf(y < 0 || y >= c, "label out of range");

        float max_v = row[0];
        int64_t argmax = 0;
        for (int64_t j = 1; j < c; ++j) {
            if (row[j] > max_v) {
                max_v = row[j];
                argmax = j;
            }
        }
        correct += argmax == y;

        double denom = 0.0;
        for (int64_t j = 0; j < c; ++j)
            denom += std::exp(static_cast<double>(row[j] - max_v));
        const double log_denom = std::log(denom);
        loss_sum -= static_cast<double>(row[y] - max_v) - log_denom;

        float *grad = dlogits.rowPtr(i);
        const float inv_n = 1.0f / static_cast<float>(n);
        for (int64_t j = 0; j < c; ++j) {
            const double p =
                std::exp(static_cast<double>(row[j] - max_v)) / denom;
            grad[j] = (static_cast<float>(p) - (j == y ? 1.0f : 0.0f)) *
                      inv_n;
        }
    }
    lossValue = loss_sum / static_cast<double>(n);
    accValue = static_cast<double>(correct) / static_cast<double>(n);
}

KernelLaunch
SoftmaxXentKernel::makeLaunch(DeviceAllocator &alloc) const
{
    const int64_t n = logits.rows();
    const int64_t c = logits.cols();

    const uint64_t in_base = alloc.map(
        logits.data(), static_cast<uint64_t>(logits.size()) * 4);
    const uint64_t lbl_base =
        alloc.map(labels.data(), static_cast<uint64_t>(n) * 8);
    const uint64_t out_base = alloc.map(
        dlogits.data(), static_cast<uint64_t>(dlogits.size()) * 4);

    KernelLaunch launch;
    launch.name = label;
    launch.kind = KernelClass::Aux;
    launch.dims.numCtas = ceilDiv(n, kCtaThreads);
    launch.dims.threadsPerCta = kCtaThreads;

    launch.genTrace = [=](int64_t cta, int warp, WarpTrace &out) {
        TraceBuilder b(out);
        const int64_t t0 =
            (cta * kCtaWarps + warp) * static_cast<int64_t>(32);
        const int lanes =
            static_cast<int>(std::clamp<int64_t>(n - t0, 0, 32));
        if (lanes == 0) {
            b.exit();
            return;
        }
        const uint32_t mask = maskOfLanes(lanes);
        std::array<uint64_t, 32> a{};

        // One thread per node (row). Label load is coalesced.
        b.aluChain(Op::INT, 2, mask);
        for (int l = 0; l < lanes; ++l)
            a[static_cast<size_t>(l)] =
                lbl_base + static_cast<uint64_t>(t0 + l) * 8;
        b.load({a.data(), static_cast<size_t>(lanes)});

        // Pass 1: max + exp-sum over classes (strided row loads).
        Reg acc = b.alu(Op::FP32, kNoReg, kNoReg, mask);
        for (int64_t j = 0; j < c; ++j) {
            for (int l = 0; l < lanes; ++l)
                a[static_cast<size_t>(l)] =
                    in_base +
                    static_cast<uint64_t>((t0 + l) * c + j) * 4;
            const Reg rv =
                b.load({a.data(), static_cast<size_t>(lanes)});
            const Reg re = b.alu(Op::SFU, rv, kNoReg, mask);
            acc = b.alu(Op::FP32, acc, re, mask);
        }
        b.control(mask);
        // Pass 2: normalized gradient store per class.
        for (int64_t j = 0; j < c; ++j) {
            const Reg g = b.alu(Op::FP32, acc, kNoReg, mask);
            for (int l = 0; l < lanes; ++l)
                a[static_cast<size_t>(l)] =
                    out_base +
                    static_cast<uint64_t>((t0 + l) * c + j) * 4;
            b.store({a.data(), static_cast<size_t>(lanes)}, g);
        }
        b.exit();
    };
    return launch;
}

} // namespace gsuite
