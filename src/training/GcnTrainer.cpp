#include "training/GcnTrainer.hpp"

#include "graph/Transforms.hpp"
#include "kernels/Elementwise.hpp"
#include "kernels/Sgemm.hpp"
#include "kernels/Spmm.hpp"
#include "sparse/SparseOps.hpp"
#include "training/Labels.hpp"
#include "util/Logging.hpp"
#include "util/Random.hpp"

namespace gsuite {

GnnTrainer::GnnTrainer(const Graph &graph, const TrainConfig &cfg)
    : graph(graph), cfg(cfg)
{
    if (cfg.layers < 1 || cfg.hidden < 1 || cfg.classes < 2)
        fatal("invalid training configuration");
    labelVec = makeSyntheticLabels(graph, cfg.classes, cfg.seed);
    switch (cfg.model) {
      case GnnModelKind::Gcn:
        buildGcn();
        break;
      case GnnModelKind::Gin:
        buildGin();
        break;
      default:
        fatal("training supports the gcn and gin models");
    }
}

DenseMatrix *
GnnTrainer::newMat(int64_t r, int64_t c)
{
    mats.push_back(std::make_unique<DenseMatrix>(r, c));
    return mats.back().get();
}

void
GnnTrainer::buildGcn()
{
    Rng rng(cfg.seed);

    // Normalized adjacency and its transpose (for backprop through
    // the aggregation), both precomputed once.
    csrs.push_back(std::make_unique<CsrMatrix>(
        gcnNormalizedAdjacency(graph)));
    CsrMatrix *an = csrs.back().get();
    csrs.push_back(std::make_unique<CsrMatrix>(transpose(*an)));
    CsrMatrix *an_t = csrs.back().get();

    const int L = cfg.layers;
    auto in_dim = [&](int k) {
        return k == 0 ? graph.featureLen() : cfg.hidden;
    };
    auto out_dim = [&](int k) {
        return k == L - 1 ? static_cast<int64_t>(cfg.classes)
                          : static_cast<int64_t>(cfg.hidden);
    };

    // --- forward ------------------------------------------------------
    std::vector<DenseMatrix *> h(static_cast<size_t>(L) + 1);
    std::vector<DenseMatrix *> ah(static_cast<size_t>(L));
    std::vector<DenseMatrix *> z(static_cast<size_t>(L));
    h[0] = const_cast<DenseMatrix *>(&graph.features);
    for (int k = 0; k < L; ++k) {
        DenseMatrix *w = newMat(in_dim(k), out_dim(k));
        w->fillGlorot(rng);
        weightPtrs.push_back(w);

        ah[static_cast<size_t>(k)] = newMat();
        kernels.push_back(std::make_unique<SpmmKernel>(
            "spmm_fwd_l" + std::to_string(k), *an,
            *h[static_cast<size_t>(k)], *ah[static_cast<size_t>(k)]));
        z[static_cast<size_t>(k)] = newMat();
        kernels.push_back(std::make_unique<SgemmKernel>(
            "sgemm_fwd_l" + std::to_string(k),
            *ah[static_cast<size_t>(k)], *w,
            *z[static_cast<size_t>(k)]));
        if (k != L - 1) {
            h[static_cast<size_t>(k) + 1] = newMat();
            kernels.push_back(std::make_unique<ElementwiseKernel>(
                "relu_fwd_l" + std::to_string(k),
                ElementwiseKernel::EwOp::Relu,
                *z[static_cast<size_t>(k)],
                *h[static_cast<size_t>(k) + 1]));
        }
    }
    logitsBuf = z[static_cast<size_t>(L) - 1];

    // --- loss ----------------------------------------------------------
    DenseMatrix *dz = newMat();
    auto loss = std::make_unique<SoftmaxXentKernel>(
        "softmax_xent", *logitsBuf, labelVec, *dz);
    lossKernel = loss.get();
    kernels.push_back(std::move(loss));

    // --- backward ------------------------------------------------------
    gradPtrs.resize(static_cast<size_t>(L));
    for (int k = L - 1; k >= 0; --k) {
        DenseMatrix *dw = newMat();
        gradPtrs[static_cast<size_t>(k)] = dw;
        // dW_k = (A H_k)^T dZ_k.
        kernels.push_back(std::make_unique<SgemmKernel>(
            "sgemm_dw_l" + std::to_string(k),
            *ah[static_cast<size_t>(k)], *dz, *dw,
            /*trans_a=*/true));
        if (k > 0) {
            // dAH = dZ W^T; dH = A^T dAH; dZ_prev = relu'(Z) * dH.
            DenseMatrix *dah = newMat();
            kernels.push_back(std::make_unique<SgemmKernel>(
                "sgemm_dx_l" + std::to_string(k), *dz,
                *weightPtrs[static_cast<size_t>(k)], *dah,
                /*trans_a=*/false, /*trans_b=*/true));
            DenseMatrix *dh = newMat();
            kernels.push_back(std::make_unique<SpmmKernel>(
                "spmm_bwd_l" + std::to_string(k), *an_t, *dah, *dh));
            DenseMatrix *dz_prev = newMat();
            kernels.push_back(std::make_unique<ElementwiseKernel>(
                "relu_bwd_l" + std::to_string(k - 1),
                ElementwiseKernel::EwOp::ReluGrad, *dh,
                *z[static_cast<size_t>(k) - 1], *dz_prev));
            dz = dz_prev;
        }
    }

    // --- SGD updates ----------------------------------------------------
    if (cfg.applyUpdates) {
        for (int k = 0; k < L; ++k) {
            kernels.push_back(std::make_unique<ElementwiseKernel>(
                "sgd_l" + std::to_string(k),
                *weightPtrs[static_cast<size_t>(k)],
                *gradPtrs[static_cast<size_t>(k)], 1.0f, -cfg.lr,
                *weightPtrs[static_cast<size_t>(k)]));
        }
    }
}

void
GnnTrainer::buildGin()
{
    Rng rng(cfg.seed);

    csrs.push_back(std::make_unique<CsrMatrix>(
        ginAdjacency(graph, cfg.ginEps)));
    CsrMatrix *ag = csrs.back().get();
    csrs.push_back(std::make_unique<CsrMatrix>(transpose(*ag)));
    CsrMatrix *ag_t = csrs.back().get();

    const int L = cfg.layers;
    auto in_dim = [&](int k) {
        return k == 0 ? graph.featureLen() : cfg.hidden;
    };
    auto out_dim = [&](int k) {
        return k == L - 1 ? static_cast<int64_t>(cfg.classes)
                          : static_cast<int64_t>(cfg.hidden);
    };

    // --- forward: S = A_gin H; Z1 = S W1; R = relu(Z1); Z2 = R W2;
    // H' = relu(Z2) (last layer: logits = Z2) ------------------------
    std::vector<DenseMatrix *> h(static_cast<size_t>(L) + 1);
    std::vector<DenseMatrix *> s(static_cast<size_t>(L));
    std::vector<DenseMatrix *> z1(static_cast<size_t>(L));
    std::vector<DenseMatrix *> r(static_cast<size_t>(L));
    std::vector<DenseMatrix *> z2(static_cast<size_t>(L));
    h[0] = const_cast<DenseMatrix *>(&graph.features);
    for (int k = 0; k < L; ++k) {
        DenseMatrix *w1 = newMat(in_dim(k), out_dim(k));
        w1->fillGlorot(rng);
        weightPtrs.push_back(w1);
        DenseMatrix *w2 = newMat(out_dim(k), out_dim(k));
        w2->fillGlorot(rng);
        weightPtrs.push_back(w2);

        s[static_cast<size_t>(k)] = newMat();
        kernels.push_back(std::make_unique<SpmmKernel>(
            "spmm_fwd_l" + std::to_string(k), *ag,
            *h[static_cast<size_t>(k)], *s[static_cast<size_t>(k)]));
        z1[static_cast<size_t>(k)] = newMat();
        kernels.push_back(std::make_unique<SgemmKernel>(
            "sgemm_fwd1_l" + std::to_string(k),
            *s[static_cast<size_t>(k)], *w1,
            *z1[static_cast<size_t>(k)]));
        r[static_cast<size_t>(k)] = newMat();
        kernels.push_back(std::make_unique<ElementwiseKernel>(
            "relu_fwd_mlp_l" + std::to_string(k),
            ElementwiseKernel::EwOp::Relu,
            *z1[static_cast<size_t>(k)],
            *r[static_cast<size_t>(k)]));
        z2[static_cast<size_t>(k)] = newMat();
        kernels.push_back(std::make_unique<SgemmKernel>(
            "sgemm_fwd2_l" + std::to_string(k),
            *r[static_cast<size_t>(k)], *w2,
            *z2[static_cast<size_t>(k)]));
        if (k != L - 1) {
            h[static_cast<size_t>(k) + 1] = newMat();
            kernels.push_back(std::make_unique<ElementwiseKernel>(
                "relu_fwd_l" + std::to_string(k),
                ElementwiseKernel::EwOp::Relu,
                *z2[static_cast<size_t>(k)],
                *h[static_cast<size_t>(k) + 1]));
        }
    }
    logitsBuf = z2[static_cast<size_t>(L) - 1];

    // --- loss ----------------------------------------------------------
    DenseMatrix *dz2 = newMat();
    auto loss = std::make_unique<SoftmaxXentKernel>(
        "softmax_xent", *logitsBuf, labelVec, *dz2);
    lossKernel = loss.get();
    kernels.push_back(std::move(loss));

    // --- backward ------------------------------------------------------
    gradPtrs.resize(static_cast<size_t>(L) * 2);
    for (int k = L - 1; k >= 0; --k) {
        DenseMatrix *w1 = weightPtrs[static_cast<size_t>(k) * 2];
        DenseMatrix *w2 = weightPtrs[static_cast<size_t>(k) * 2 + 1];

        // dW2 = R^T dZ2; dR = dZ2 W2^T; dZ1 = relu'(Z1) * dR.
        DenseMatrix *dw2 = newMat();
        gradPtrs[static_cast<size_t>(k) * 2 + 1] = dw2;
        kernels.push_back(std::make_unique<SgemmKernel>(
            "sgemm_dw2_l" + std::to_string(k),
            *r[static_cast<size_t>(k)], *dz2, *dw2,
            /*trans_a=*/true));
        DenseMatrix *dr = newMat();
        kernels.push_back(std::make_unique<SgemmKernel>(
            "sgemm_dr_l" + std::to_string(k), *dz2, *w2, *dr,
            /*trans_a=*/false, /*trans_b=*/true));
        DenseMatrix *dz1 = newMat();
        kernels.push_back(std::make_unique<ElementwiseKernel>(
            "relu_bwd_mlp_l" + std::to_string(k),
            ElementwiseKernel::EwOp::ReluGrad, *dr,
            *z1[static_cast<size_t>(k)], *dz1));

        // dW1 = S^T dZ1.
        DenseMatrix *dw1 = newMat();
        gradPtrs[static_cast<size_t>(k) * 2] = dw1;
        kernels.push_back(std::make_unique<SgemmKernel>(
            "sgemm_dw1_l" + std::to_string(k),
            *s[static_cast<size_t>(k)], *dz1, *dw1,
            /*trans_a=*/true));

        if (k > 0) {
            // dS = dZ1 W1^T; dH = A_gin^T dS; gate by relu'(Z2_prev).
            DenseMatrix *ds = newMat();
            kernels.push_back(std::make_unique<SgemmKernel>(
                "sgemm_ds_l" + std::to_string(k), *dz1, *w1, *ds,
                /*trans_a=*/false, /*trans_b=*/true));
            DenseMatrix *dh = newMat();
            kernels.push_back(std::make_unique<SpmmKernel>(
                "spmm_bwd_l" + std::to_string(k), *ag_t, *ds, *dh));
            DenseMatrix *dz2_prev = newMat();
            kernels.push_back(std::make_unique<ElementwiseKernel>(
                "relu_bwd_l" + std::to_string(k - 1),
                ElementwiseKernel::EwOp::ReluGrad, *dh,
                *z2[static_cast<size_t>(k) - 1], *dz2_prev));
            dz2 = dz2_prev;
        }
    }

    // --- SGD updates ----------------------------------------------------
    if (cfg.applyUpdates) {
        for (size_t wi = 0; wi < weightPtrs.size(); ++wi) {
            kernels.push_back(std::make_unique<ElementwiseKernel>(
                "sgd_w" + std::to_string(wi), *weightPtrs[wi],
                *gradPtrs[wi], 1.0f, -cfg.lr, *weightPtrs[wi]));
        }
    }
}

EpochStats
GnnTrainer::runEpoch(ExecutionEngine &engine)
{
    engine.clearTimeline();
    for (auto &k : kernels)
        engine.run(*k);
    EpochStats stats;
    stats.loss = lossKernel->loss();
    stats.accuracy = lossKernel->accuracy();
    stats.kernelUs = engine.totalWallUs();
    return stats;
}

std::vector<EpochStats>
GnnTrainer::train(ExecutionEngine &engine)
{
    std::vector<EpochStats> history;
    history.reserve(static_cast<size_t>(cfg.epochs));
    for (int e = 0; e < cfg.epochs; ++e)
        history.push_back(runEpoch(engine));
    return history;
}

} // namespace gsuite
