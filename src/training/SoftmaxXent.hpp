/**
 * @file
 * Softmax cross-entropy loss kernel — the output layer of the
 * training extension (the paper's future work: "adding support for
 * GNN-Training, which includes training-related aspects such as
 * neuron layers, propagations, weights").
 *
 * Computes, per node, softmax(logits) against an integer label;
 * produces the mean loss, the accuracy, and the logits gradient
 * (softmax - onehot) / n that backpropagation starts from.
 */

#ifndef GSUITE_TRAINING_SOFTMAXXENT_HPP
#define GSUITE_TRAINING_SOFTMAXXENT_HPP

#include <cstdint>
#include <vector>

#include "kernels/Kernel.hpp"
#include "tensor/DenseMatrix.hpp"

namespace gsuite {

/** The loss kernel (reported as "other" in kernel distributions). */
class SoftmaxXentKernel : public Kernel
{
  public:
    /**
     * @param logits Network output [n x classes].
     * @param labels Ground truth, length n, values in [0, classes).
     * @param dlogits Output gradient [n x classes].
     */
    SoftmaxXentKernel(std::string label, const DenseMatrix &logits,
                      const std::vector<int64_t> &labels,
                      DenseMatrix &dlogits);

    std::string name() const override { return label; }
    KernelClass kind() const override { return KernelClass::Aux; }
    void execute() override;
    KernelLaunch makeLaunch(DeviceAllocator &alloc) const override;

    /** Mean cross-entropy over nodes; valid after execute(). */
    double loss() const { return lossValue; }

    /** Fraction of nodes whose argmax matches the label. */
    double accuracy() const { return accValue; }

  private:
    std::string label;
    const DenseMatrix &logits;
    const std::vector<int64_t> &labels;
    DenseMatrix &dlogits;
    double lossValue = 0.0;
    double accValue = 0.0;
};

} // namespace gsuite

#endif // GSUITE_TRAINING_SOFTMAXXENT_HPP
